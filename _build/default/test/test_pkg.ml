(* Tests for the package-dependence graph. *)

module Graph = Encl_pkg.Graph

let build edges =
  let g = Graph.create () in
  List.iter (fun (a, b) -> Graph.add_import g ~importer:a ~imported:b) edges;
  g

let unit_tests =
  [
    Alcotest.test_case "direct and natural deps" `Quick (fun () ->
        (* Figure 1's graph: main -> libFx -> img; main -> secrets, os. *)
        let g =
          build
            [
              ("main", "libFx"); ("main", "secrets"); ("main", "os"); ("libFx", "img");
            ]
        in
        Alcotest.(check (list string)) "direct" [ "libFx"; "os"; "secrets" ]
          (Graph.direct_deps g "main");
        Alcotest.(check (list string)) "natural" [ "img"; "libFx"; "os"; "secrets" ]
          (Graph.natural_deps g "main");
        Alcotest.(check (list string)) "libFx natural" [ "img" ]
          (Graph.natural_deps g "libFx"));
    Alcotest.test_case "foreignness" `Quick (fun () ->
        let g = build [ ("main", "libFx"); ("libFx", "img"); ("main", "secrets") ] in
        Alcotest.(check bool) "img not foreign to main" false
          (Graph.is_foreign g ~of_:"main" "img");
        Alcotest.(check bool) "secrets foreign to libFx" true
          (Graph.is_foreign g ~of_:"libFx" "secrets");
        Alcotest.(check bool) "self not foreign" false
          (Graph.is_foreign g ~of_:"main" "main"));
    Alcotest.test_case "self import rejected" `Quick (fun () ->
        let g = Graph.create () in
        match Graph.add_import g ~importer:"a" ~imported:"a" with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "self import accepted");
    Alcotest.test_case "cycle detection" `Quick (fun () ->
        let g = build [ ("a", "b"); ("b", "c"); ("c", "a") ] in
        Alcotest.(check bool) "cycle found" true (Graph.has_cycle g <> None);
        let acyclic = build [ ("a", "b"); ("b", "c"); ("a", "c") ] in
        Alcotest.(check bool) "no cycle" true (Graph.has_cycle acyclic = None));
    Alcotest.test_case "topological order respects edges" `Quick (fun () ->
        let g = build [ ("a", "b"); ("b", "c"); ("a", "d") ] in
        match Graph.topological_order g with
        | Error _ -> Alcotest.fail "unexpected cycle"
        | Ok order ->
            let pos x =
              let rec go i = function
                | [] -> -1
                | y :: _ when y = x -> i
                | _ :: r -> go (i + 1) r
              in
              go 0 order
            in
            Alcotest.(check bool) "c before b" true (pos "c" < pos "b");
            Alcotest.(check bool) "b before a" true (pos "b" < pos "a");
            Alcotest.(check bool) "d before a" true (pos "d" < pos "a"));
    Alcotest.test_case "reverse deps" `Quick (fun () ->
        let g = build [ ("a", "c"); ("b", "c") ] in
        Alcotest.(check (list string)) "importers of c" [ "a"; "b" ]
          (Graph.reverse_deps g "c"));
    Alcotest.test_case "dot export mentions all nodes" `Quick (fun () ->
        let contains haystack needle =
          let n = String.length needle and h = String.length haystack in
          let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
          go 0
        in
        let g = build [ ("a", "b") ] in
        let dot = Graph.to_dot g in
        Alcotest.(check bool) "node a" true (contains dot "\"a\"");
        Alcotest.(check bool) "edge" true (contains dot "\"a\" -> \"b\""));
  ]

(* Random-DAG generator: edges only from higher to lower indices, so the
   graph is acyclic by construction. *)
let dag_gen =
  QCheck.make
    ~print:(fun edges ->
      String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))
    QCheck.Gen.(
      let* n = int_range 2 10 in
      let* density = int_range 1 3 in
      let edges = ref [] in
      for i = 1 to n - 1 do
        for j = 0 to i - 1 do
          if (i * 7) + (j * 13) mod (4 - density) = 0 || j = i - 1 then
            edges := (i, j) :: !edges
        done
      done;
      return !edges)

let pkg_name i = Printf.sprintf "p%d" i

let graph_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs are acyclic and topo-sortable" ~count:100
         dag_gen
         (fun edges ->
           let g = Graph.create () in
           List.iter
             (fun (a, b) -> Graph.add_import g ~importer:(pkg_name a) ~imported:(pkg_name b))
             edges;
           match Graph.topological_order g with
           | Error _ -> false
           | Ok order ->
               let pos = Hashtbl.create 16 in
               List.iteri (fun i p -> Hashtbl.replace pos p i) order;
               List.for_all
                 (fun (a, b) ->
                   Hashtbl.find pos (pkg_name b) < Hashtbl.find pos (pkg_name a))
                 edges));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"natural deps are transitively closed" ~count:100 dag_gen
         (fun edges ->
           let g = Graph.create () in
           List.iter
             (fun (a, b) -> Graph.add_import g ~importer:(pkg_name a) ~imported:(pkg_name b))
             edges;
           List.for_all
             (fun p ->
               let nat = Graph.natural_deps g p in
               List.for_all
                 (fun d ->
                   List.for_all (fun dd -> List.mem dd nat) (Graph.natural_deps g d))
                 nat)
             (Graph.packages g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"direct deps are a subset of natural deps" ~count:100
         dag_gen
         (fun edges ->
           let g = Graph.create () in
           List.iter
             (fun (a, b) -> Graph.add_import g ~importer:(pkg_name a) ~imported:(pkg_name b))
             edges;
           List.for_all
             (fun p ->
               let nat = Graph.natural_deps g p in
               List.for_all (fun d -> List.mem d nat) (Graph.direct_deps g p))
             (Graph.packages g)));
  ]

let () = Alcotest.run "pkg" [ ("graph", unit_tests); ("props", graph_props) ]
