(* Tests for the object format, linker, and loader. *)

module Objfile = Encl_elf.Objfile
module Linker = Encl_elf.Linker
module Image = Encl_elf.Image
module Section = Encl_elf.Section
module Machine = Encl_litterbox.Machine
module Loader = Encl_litterbox.Loader

let section_tests =
  [
    Alcotest.test_case "alignment enforced" `Quick (fun () ->
        match Section.make ~name:"s" ~owner:"p" ~kind:Section.Text ~addr:100 ~size:10 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unaligned section accepted");
    Alcotest.test_case "pages and containment" `Quick (fun () ->
        let s = Section.make ~name:"s" ~owner:"p" ~kind:Section.Data ~addr:8192 ~size:5000 in
        Alcotest.(check int) "2 pages" 2 (Section.pages s);
        Alcotest.(check bool) "start" true (Section.contains s 8192);
        Alcotest.(check bool) "into second page" true (Section.contains s 12000);
        Alcotest.(check bool) "past end" false (Section.contains s 16384));
    Alcotest.test_case "overlap detection" `Quick (fun () ->
        let a = Section.make ~name:"a" ~owner:"p" ~kind:Section.Data ~addr:0 ~size:8192 in
        let b = Section.make ~name:"b" ~owner:"q" ~kind:Section.Data ~addr:8192 ~size:4096 in
        let c = Section.make ~name:"c" ~owner:"r" ~kind:Section.Data ~addr:4096 ~size:4096 in
        Alcotest.(check bool) "adjacent fine" false (Section.overlaps a b);
        Alcotest.(check bool) "overlap found" true (Section.overlaps a c));
    Alcotest.test_case "default perms per kind" `Quick (fun () ->
        Alcotest.(check bool) "text x" true (Section.default_perms Section.Text).Pte.x;
        Alcotest.(check bool) "rodata not w" false (Section.default_perms Section.Rodata).Pte.w;
        Alcotest.(check bool) "data w" true (Section.default_perms Section.Data).Pte.w);
  ]

let objfile_tests =
  [
    Alcotest.test_case "duplicate symbols rejected" `Quick (fun () ->
        match
          Objfile.make ~pkg:"p"
            ~functions:[ Objfile.sym "f" 8 ]
            ~globals:[ Objfile.sym "f" 8 ]
            ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate accepted");
    Alcotest.test_case "enclosure closure must exist" `Quick (fun () ->
        match
          Objfile.make ~pkg:"p"
            ~functions:[ Objfile.sym "f" 8 ]
            ~enclosures:
              [ { Objfile.enc_name = "e"; enc_policy = ""; enc_closure = "ghost"; enc_deps = [] } ]
            ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "ghost closure accepted");
    Alcotest.test_case "enclosure deps must be imports" `Quick (fun () ->
        match
          Objfile.make ~pkg:"p" ~imports:[ "a" ]
            ~functions:[ Objfile.sym "f" 8 ]
            ~enclosures:
              [ { Objfile.enc_name = "e"; enc_policy = ""; enc_closure = "f"; enc_deps = [ "b" ] } ]
            ()
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "unimported dep accepted");
    Alcotest.test_case "init larger than size rejected" `Quick (fun () ->
        match Objfile.sym ~init:(Bytes.make 10 'x') "g" 4 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "oversized init accepted");
  ]

let link_errors =
  [
    Alcotest.test_case "duplicate package" `Quick (fun () ->
        let o = Objfile.make ~pkg:"p" () in
        match Linker.link ~objfiles:[ o; o ] ~entry:"p" with
        | Error (Linker.Duplicate_package "p") -> ()
        | _ -> Alcotest.fail "expected duplicate error");
    Alcotest.test_case "missing import" `Quick (fun () ->
        let o = Objfile.make ~pkg:"p" ~imports:[ "ghost" ] () in
        match Linker.link ~objfiles:[ o ] ~entry:"p" with
        | Error (Linker.Missing_import _) -> ()
        | _ -> Alcotest.fail "expected missing import");
    Alcotest.test_case "import cycle" `Quick (fun () ->
        let a = Objfile.make ~pkg:"a" ~imports:[ "b" ] () in
        let b = Objfile.make ~pkg:"b" ~imports:[ "a" ] () in
        match Linker.link ~objfiles:[ a; b ] ~entry:"a" with
        | Error (Linker.Import_cycle _) -> ()
        | _ -> Alcotest.fail "expected cycle");
    Alcotest.test_case "unknown entry" `Quick (fun () ->
        let o = Objfile.make ~pkg:"p" () in
        match Linker.link ~objfiles:[ o ] ~entry:"main" with
        | Error (Linker.Unknown_entry _) -> ()
        | _ -> Alcotest.fail "expected unknown entry");
    Alcotest.test_case "duplicate enclosure name" `Quick (fun () ->
        let mk pkg =
          Objfile.make ~pkg
            ~functions:[ Objfile.sym "f" 8 ]
            ~enclosures:
              [ { Objfile.enc_name = "same"; enc_policy = ""; enc_closure = "f"; enc_deps = [] } ]
            ()
        in
        match Linker.link ~objfiles:[ mk "a"; mk "b" ] ~entry:"a" with
        | Error (Linker.Duplicate_enclosure "same") -> ()
        | _ -> Alcotest.fail "expected duplicate enclosure");
  ]

let image_tests =
  [
    Alcotest.test_case "figure-1 layout invariants" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        (* No two sections overlap. *)
        let rec pairs = function
          | [] -> ()
          | s :: rest ->
              List.iter
                (fun s2 ->
                  if Section.overlaps s s2 then
                    Alcotest.failf "sections %s and %s overlap" s.Section.name
                      s2.Section.name)
                rest;
              pairs rest
        in
        pairs image.Image.sections;
        (* No two packages share a page. *)
        let page_owner = Hashtbl.create 64 in
        List.iter
          (fun (s : Section.t) ->
            for vpn = s.Section.addr / Phys.page_size
                to (Section.end_addr s - 1) / Phys.page_size do
              match Hashtbl.find_opt page_owner vpn with
              | Some owner when owner <> s.Section.owner ->
                  Alcotest.failf "page %d shared by %s and %s" vpn owner s.Section.owner
              | _ -> Hashtbl.replace page_owner vpn s.Section.owner
            done)
          image.Image.sections;
        (* Closure isolated into its own section. *)
        let rcl_sec =
          List.find_opt (fun (s : Section.t) -> s.Section.name = "main.rcl.text")
            image.Image.sections
        in
        Alcotest.(check bool) "closure section" true (rcl_sec <> None));
    Alcotest.test_case "symbols live inside their sections" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        List.iter
          (fun (sym : Image.placed_sym) ->
            match Image.section_at image sym.Image.ps_addr with
            | None -> Alcotest.failf "symbol %s not in any section" sym.Image.ps_name
            | Some s ->
                Alcotest.(check string)
                  ("owner of " ^ sym.Image.ps_name)
                  sym.Image.ps_pkg s.Section.owner)
          image.Image.symbols);
    Alcotest.test_case "marked packages cover enclosure reach" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        List.iter
          (fun p ->
            Alcotest.(check bool) (p ^ " marked") true (List.mem p image.Image.marked))
          [ "libFx"; "img"; "secrets"; "main" ]);
    Alcotest.test_case "verif list has enclosure sites + runtime hooks" `Quick
      (fun () ->
        let image = Fixtures.figure1_image () in
        Alcotest.(check bool) "rcl prolog" true
          (Image.verif_allows image ~site:"enclosure:rcl" Image.Prolog);
        Alcotest.(check bool) "rcl epilog" true
          (Image.verif_allows image ~site:"enclosure:rcl" Image.Epilog);
        Alcotest.(check bool) "mallocgc transfer" true
          (Image.verif_allows image ~site:"runtime.mallocgc" Image.Transfer);
        Alcotest.(check bool) "scheduler execute" true
          (Image.verif_allows image ~site:"runtime.scheduler" Image.Execute);
        Alcotest.(check bool) "random site refused" false
          (Image.verif_allows image ~site:"evil" Image.Prolog));
    Alcotest.test_case "enclosure descriptor carries deps and addr" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        let e = Option.get (Image.enclosure_named image "rcl") in
        Alcotest.(check (list string)) "deps" [ "libFx" ] e.Image.ed_direct_deps;
        let sym = Option.get (Image.find_symbol image ~pkg:"main" "rcl_body") in
        Alcotest.(check int) "closure addr" sym.Image.ps_addr e.Image.ed_closure_addr);
    Alcotest.test_case "init order respects dependencies" `Quick (fun () ->
        let a = Objfile.make ~pkg:"a" ~imports:[ "b" ] ~has_init:true () in
        let b = Objfile.make ~pkg:"b" ~has_init:true () in
        let image = Result.get_ok (Linker.link ~objfiles:[ a; b ] ~entry:"a") in
        Alcotest.(check (list string)) "deps first" [ "b"; "a" ] image.Image.init_order);
  ]

let loader_tests =
  [
    Alcotest.test_case "initialised symbols are loaded" `Quick (fun () ->
        let machine = Machine.create () in
        let image = Fixtures.figure1_image () in
        Alcotest.(check bool) "load" true (Result.is_ok (Loader.load machine image));
        let addr = Fixtures.sym_addr image ~pkg:"secrets" "original" in
        let data = Cpu.read_bytes machine.Machine.cpu ~addr ~len:19 in
        Alcotest.(check string) "init bytes" "original-image-bits" (Bytes.to_string data));
    Alcotest.test_case "rodata is loaded but not writable" `Quick (fun () ->
        let machine = Machine.create () in
        let image = Fixtures.figure1_image () in
        ignore (Loader.load machine image);
        let addr = Fixtures.sym_addr image ~pkg:"img" "magic" in
        Alcotest.(check string) "magic" "PNG!"
          (Bytes.to_string (Cpu.read_bytes machine.Machine.cpu ~addr ~len:4));
        match Cpu.write8 machine.Machine.cpu addr 0 with
        | exception Cpu.Fault _ -> ()
        | () -> Alcotest.fail "rodata writable");
  ]

(* Property: linking any set of well-formed packages produces page-disjoint
   per-package sections. *)
let linker_props =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 8 in
        let* sizes = list_repeat n (int_range 1 9000) in
        return sizes)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"linked packages never share pages" ~count:100 gen
         (fun sizes ->
           let objfiles =
             List.mapi
               (fun i size ->
                 Objfile.make
                   ~pkg:(Printf.sprintf "p%d" i)
                   ~functions:[ Objfile.sym "f" size ]
                   ~globals:[ Objfile.sym "g" (size / 2) ]
                   ~constants:[ Objfile.sym "c" 16 ]
                   ())
               sizes
           in
           match Linker.link ~objfiles ~entry:"p0" with
           | Error _ -> false
           | Ok image ->
               let owners = Hashtbl.create 64 in
               List.for_all
                 (fun (s : Section.t) ->
                   let ok = ref true in
                   for vpn = s.Section.addr / Phys.page_size
                       to (Section.end_addr s - 1) / Phys.page_size do
                     match Hashtbl.find_opt owners vpn with
                     | Some o when o <> s.Section.owner -> ok := false
                     | _ -> Hashtbl.replace owners vpn s.Section.owner
                   done;
                   !ok)
                 image.Image.sections));
  ]

let () =
  Alcotest.run "elf"
    [
      ("section", section_tests);
      ("objfile", objfile_tests);
      ("link-errors", link_errors);
      ("image", image_tests);
      ("loader", loader_tests);
      ("props", linker_props);
    ]
