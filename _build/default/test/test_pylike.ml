(* Tests for the CPython-like frontend and the §6.4 experiment. *)

module Pyrt = Encl_pylike.Pyrt
module Plot = Encl_pylike.Plot_experiment
module Lb = Encl_litterbox.Litterbox
module Machine = Encl_litterbox.Machine

let boot ?backend ?(mode = Pyrt.Conservative) () =
  match Pyrt.boot ?backend ~mode () with
  | Ok rt -> rt
  | Error e -> failwith e

let import rt ?imports ?arena_bytes name =
  match Pyrt.import_module rt ~name ?imports ?arena_bytes () with
  | Ok () -> ()
  | Error e -> failwith e

let import_tests =
  [
    Alcotest.test_case "lazy import registers once" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        import rt "numpy";
        Alcotest.(check bool) "imported" true (Pyrt.is_imported rt "numpy");
        Alcotest.(check bool) "re-import is a no-op" true
          (Pyrt.import_module rt ~name:"numpy" () = Ok ()));
    Alcotest.test_case "imports require dependencies first" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        Alcotest.(check bool) "missing dep" true
          (Result.is_error
             (Pyrt.import_module rt ~name:"matplotlib" ~imports:[ "numpy" ] ())));
    Alcotest.test_case "module body runs at import" `Quick (fun () ->
        let rt = boot () in
        let ran = ref false in
        import rt "mod";
        ignore ran;
        let rt2 = boot () in
        (match Pyrt.import_module rt2 ~name:"mod2" ~body:(fun _ -> ran := true) () with
        | Ok () -> ()
        | Error e -> failwith e);
        Alcotest.(check bool) "ran" true !ran);
    Alcotest.test_case "multiple partial Inits accumulate" `Quick (fun () ->
        let rt = boot ~backend:Lb.Mpk () in
        List.iter (fun n -> import rt n) [ "a"; "b"; "c"; "d" ];
        Alcotest.(check int) "5 modules" 5 (List.length (Pyrt.modules rt)));
  ]

let object_tests =
  [
    Alcotest.test_case "alloc starts with refcount 1" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let o = Pyrt.alloc_obj rt ~modul:"m" ~len:16 in
        Alcotest.(check int) "rc" 1 (Pyrt.refcount rt o));
    Alcotest.test_case "incref/decref" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let o = Pyrt.alloc_obj rt ~modul:"m" ~len:16 in
        Pyrt.incref rt o;
        Pyrt.incref rt o;
        Alcotest.(check int) "3" 3 (Pyrt.refcount rt o);
        Pyrt.decref rt o;
        Alcotest.(check int) "2" 2 (Pyrt.refcount rt o));
    Alcotest.test_case "decref underflow rejected" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let o = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
        Pyrt.decref rt o;
        match Pyrt.decref rt o with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "underflow accepted");
    Alcotest.test_case "payload roundtrip" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let o = Pyrt.alloc_obj rt ~modul:"m" ~len:11 in
        Pyrt.write_payload rt o (Bytes.of_string "hello world");
        Alcotest.(check bytes) "payload" (Bytes.of_string "hello world")
          (Pyrt.read_payload rt o));
    Alcotest.test_case "localcopy lands in the destination module" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        import rt "src";
        import rt "dst";
        let o = Pyrt.alloc_obj rt ~modul:"src" ~len:8 in
        Pyrt.write_payload rt o (Bytes.of_string "copydata");
        let c = Pyrt.localcopy rt o ~dst_module:"dst" in
        Alcotest.(check string) "module" "dst" c.Pyrt.o_module;
        Alcotest.(check bytes) "payload" (Bytes.of_string "copydata")
          (Pyrt.read_payload rt c));
    Alcotest.test_case "collect frees dead objects" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let a = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
        let _b = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
        Pyrt.decref rt a;
        let live0 = Pyrt.live_objects rt in
        let freed = Pyrt.collect rt in
        Alcotest.(check int) "one freed" 1 freed;
        Alcotest.(check int) "live count" (live0 - 1) (Pyrt.live_objects rt));
    Alcotest.test_case "minor collection promotes survivors" `Quick (fun () ->
        let rt = boot () in
        import rt "m";
        let a = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
        let b = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
        Pyrt.decref rt b;
        Alcotest.(check int) "both young" 2 (Pyrt.young_objects rt);
        let freed = Pyrt.collect_minor rt in
        Alcotest.(check int) "one freed" 1 freed;
        Alcotest.(check int) "survivor promoted" 1 (Pyrt.old_objects rt);
        Alcotest.(check int) "young empty" 0 (Pyrt.young_objects rt);
        (* A dead old object survives minors but not majors. *)
        Pyrt.decref rt a;
        Alcotest.(check int) "minor skips old gen" 0 (Pyrt.collect_minor rt);
        Alcotest.(check int) "major reclaims it" 1 (Pyrt.collect rt));
    Alcotest.test_case "automatic minor collections at the threshold" `Quick
      (fun () ->
        let rt =
          match Pyrt.boot ~gc_threshold:10 ~mode:Pyrt.Conservative () with
          | Ok rt -> rt
          | Error e -> failwith e
        in
        (match Pyrt.import_module rt ~name:"m" () with Ok () -> () | Error e -> failwith e);
        for _ = 1 to 35 do
          let o = Pyrt.alloc_obj rt ~modul:"m" ~len:8 in
          Pyrt.decref rt o
        done;
        Alcotest.(check bool) "collections ran" true (Pyrt.collections rt >= 3);
        Alcotest.(check bool) "garbage reclaimed" true (Pyrt.live_objects rt < 35));
    Alcotest.test_case "arena exhaustion reported" `Quick (fun () ->
        let rt = boot () in
        import rt ~arena_bytes:4096 "tiny";
        match
          for _ = 1 to 500 do
            ignore (Pyrt.alloc_obj rt ~modul:"tiny" ~len:64)
          done
        with
        | exception Failure _ -> ()
        | () -> Alcotest.fail "arena never exhausted");
  ]

let enclosure_tests =
  [
    Alcotest.test_case "read-only secret readable inside enclosure" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        import rt "secret";
        import rt "libplot";
        let o = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        Pyrt.write_payload rt o (Bytes.of_string "8bytes!!");
        match
          Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
            ~policy:"secret:R; sys=none" (fun () -> Pyrt.read_payload rt o)
        with
        | Ok payload -> Alcotest.(check bytes) "read" (Bytes.of_string "8bytes!!") payload
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "enclosure cannot write the read-only secret" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        import rt "secret";
        import rt "libplot";
        let o = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        match
          Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
            ~policy:"secret:R; sys=none" (fun () ->
              Pyrt.write_payload rt o (Bytes.make 8 'x'))
        with
        | Ok () -> Alcotest.fail "write allowed"
        | Error _ -> ());
    Alcotest.test_case "unlisted module is unmapped" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx () in
        import rt "secret";
        import rt "libplot";
        let o = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        match
          Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
            ~policy:"; sys=none" (fun () -> Pyrt.read_payload rt o)
        with
        | Ok _ -> Alcotest.fail "secret readable without grant"
        | Error _ -> ());
    Alcotest.test_case "conservative mode switches on RO refcounts" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx ~mode:Pyrt.Conservative () in
        import rt "secret";
        import rt "libplot";
        let o = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        let s0 = Pyrt.trusted_switches rt in
        ignore
          (Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
             ~policy:"secret:R; sys=none" (fun () ->
               Pyrt.incref rt o;
               Pyrt.decref rt o));
        Alcotest.(check int) "4 switches (2 round trips)" 4
          (Pyrt.trusted_switches rt - s0));
    Alcotest.test_case "decoupled mode avoids the switches" `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx ~mode:Pyrt.Decoupled () in
        import rt "secret";
        import rt "libplot";
        let o = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        let s0 = Pyrt.trusted_switches rt in
        ignore
          (Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
             ~policy:"secret:R; sys=none" (fun () ->
               Pyrt.incref rt o;
               Pyrt.decref rt o));
        Alcotest.(check int) "no switches" 0 (Pyrt.trusted_switches rt - s0));
    Alcotest.test_case "refcount updates inside the enclosure's own module are free"
      `Quick (fun () ->
        let rt = boot ~backend:Lb.Vtx ~mode:Pyrt.Conservative () in
        import rt "libplot";
        let s0 = Pyrt.trusted_switches rt in
        ignore
          (Pyrt.with_enclosure rt ~name:"e" ~owner:"__main__" ~deps:[ "libplot" ]
             ~policy:"; sys=none" (fun () ->
               let o = Pyrt.alloc_obj rt ~modul:"libplot" ~len:8 in
               Pyrt.incref rt o;
               Pyrt.decref rt o));
        Alcotest.(check int) "no switches" 0 (Pyrt.trusted_switches rt - s0));
  ]

let experiment_tests =
  [
    Alcotest.test_case "plot experiment functional under all configs" `Quick
      (fun () ->
        let base = Plot.run ~mode:Pyrt.Conservative ~points:2_000 () in
        Alcotest.(check bool) "plot written" true base.Plot.plot_on_disk;
        Alcotest.(check int) "all points" 2_000 base.Plot.plotted;
        let cons = Plot.run ~backend:Lb.Vtx ~mode:Pyrt.Conservative ~points:2_000 () in
        Alcotest.(check bool) "plot written (vtx)" true cons.Plot.plot_on_disk;
        (* Two switches per refcount excursion, incref+decref per point. *)
        Alcotest.(check int) "switch count" (2_000 * 4) cons.Plot.switches;
        let dec = Plot.run ~backend:Lb.Vtx ~mode:Pyrt.Decoupled ~points:2_000 () in
        Alcotest.(check int) "no switches decoupled" 0 dec.Plot.switches;
        Alcotest.(check bool) "conservative slower" true
          (cons.Plot.total_ns > dec.Plot.total_ns));
    Alcotest.test_case "conservative switch time dominates" `Quick (fun () ->
        let cons = Plot.run ~backend:Lb.Vtx ~mode:Pyrt.Conservative ~points:20_000 () in
        Alcotest.(check bool) "switch > compute" true
          (cons.Plot.switch_ns > cons.Plot.compute_ns));
  ]

let () =
  Alcotest.run "pylike"
    [
      ("import", import_tests);
      ("objects", object_tests);
      ("enclosures", enclosure_tests);
      ("experiment", experiment_tests);
    ]
