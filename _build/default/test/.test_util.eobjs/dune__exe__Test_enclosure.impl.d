test/test_enclosure.ml: Alcotest Encl_elf Encl_enclosure Encl_kernel Encl_litterbox Result
