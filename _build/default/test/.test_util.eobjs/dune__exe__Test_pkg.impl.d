test/test_pkg.ml: Alcotest Encl_pkg Hashtbl List Printf QCheck QCheck_alcotest String
