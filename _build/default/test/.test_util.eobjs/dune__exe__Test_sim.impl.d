test/test_sim.ml: Alcotest Bytes Char Clock Costs Cpu Format List Mpk Option Pagetable Phys Pte QCheck QCheck_alcotest Result Tlb Vtx
