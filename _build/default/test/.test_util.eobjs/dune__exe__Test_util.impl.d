test/test_util.ml: Alcotest Encl_util Int64 QCheck QCheck_alcotest
