test/test_minigo.ml: Alcotest Encl_golike Encl_litterbox Encl_minigo List Option Result String
