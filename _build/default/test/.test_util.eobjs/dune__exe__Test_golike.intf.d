test/test_golike.mli:
