test/test_minigo.mli:
