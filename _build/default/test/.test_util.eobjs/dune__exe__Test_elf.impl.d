test/test_elf.ml: Alcotest Bytes Cpu Encl_elf Encl_litterbox Fixtures Hashtbl List Option Phys Printf Pte QCheck QCheck_alcotest Result
