test/test_litterbox.mli:
