test/test_pylike.ml: Alcotest Bytes Encl_litterbox Encl_pylike List Result
