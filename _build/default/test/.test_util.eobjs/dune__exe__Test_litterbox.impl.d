test/test_litterbox.ml: Alcotest Bytes Char Clock Costs Cpu Encl_elf Encl_kernel Encl_litterbox Fixtures Format List Option Phys Pte QCheck QCheck_alcotest Result String
