test/test_golike.ml: Alcotest Bytes Clock Cpu Encl_elf Encl_golike Encl_kernel Encl_litterbox Encl_util Int64 List Option QCheck QCheck_alcotest Result String
