test/test_kernel.ml: Alcotest Bytes Char Clock Cpu Encl_kernel Encl_litterbox List Mpk Option Pagetable Phys Pte QCheck QCheck_alcotest Result
