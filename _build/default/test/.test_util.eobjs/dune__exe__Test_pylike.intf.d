test/test_pylike.mli:
