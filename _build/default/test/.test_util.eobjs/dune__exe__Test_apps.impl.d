test/test_apps.ml: Alcotest Bytes Cpu Encl_apps Encl_elf Encl_golike Encl_kernel Encl_litterbox Encl_pkg List Option Printf QCheck QCheck_alcotest Result String
