(* End-to-end tests of LitterBox over the Figure 1 program, plus unit
   tests for views, policies, and clustering. *)

module Lb = Encl_litterbox.Litterbox
module Machine = Encl_litterbox.Machine
module Policy = Encl_litterbox.Policy
module View = Encl_litterbox.View
module Types = Encl_litterbox.Types
module Cluster = Encl_litterbox.Cluster
module K = Encl_kernel.Kernel
module Image = Encl_elf.Image

let check_fails name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Lb.Fault _ -> ()
      | exception Cpu.Fault _ -> ()
      | exception K.Syscall_killed _ -> ()
      | _ -> Alcotest.fail "expected a fault")

(* ------------------------------------------------------------------ *)
(* Policy parsing *)

let policy_tests =
  let roundtrip s =
    match Policy.parse s with
    | Error e -> Alcotest.failf "parse %S: %s" s e
    | Ok p -> (
        match Policy.parse (Policy.to_string p) with
        | Error e -> Alcotest.failf "re-parse of %S: %s" (Policy.to_string p) e
        | Ok p' ->
            Alcotest.(check string)
              "roundtrip" (Policy.to_string p) (Policy.to_string p'))
  in
  [
    Alcotest.test_case "default is empty + none" `Quick (fun () ->
        let p = Policy.default in
        Alcotest.(check bool) "no modifiers" true (p.Policy.modifiers = []);
        Alcotest.(check bool) "no syscalls" true (p.Policy.filter = Policy.Sys_none));
    Alcotest.test_case "parse figure-1 policy" `Quick (fun () ->
        match Policy.parse "secrets:R; sys=none" with
        | Error e -> Alcotest.fail e
        | Ok p ->
            Alcotest.(check bool)
              "secrets read-only" true
              (p.Policy.modifiers = [ ("secrets", Types.R) ]);
            Alcotest.(check bool) "none" true (p.Policy.filter = Policy.Sys_none));
    Alcotest.test_case "parse categories" `Quick (fun () ->
        match Policy.parse "; sys=net,file" with
        | Error e -> Alcotest.fail e
        | Ok p ->
            Alcotest.(check bool)
              "net allowed" true
              (Policy.filter_allows_cat p.Policy.filter Encl_kernel.Sysno.Cat_net);
            Alcotest.(check bool)
              "mem denied" false
              (Policy.filter_allows_cat p.Policy.filter Encl_kernel.Sysno.Cat_mem));
    Alcotest.test_case "parse connect() ip lists" `Quick (fun () ->
        match Policy.parse "; sys=connect(10.0.0.1|10.0.0.2)" with
        | Error e -> Alcotest.fail e
        | Ok p ->
            let ip1 = Encl_kernel.Net.addr_of_string "10.0.0.1" in
            let evil = Encl_kernel.Net.addr_of_string "6.6.6.6" in
            Alcotest.(check bool)
              "listed ip ok" true
              (Policy.filter_allows_connect p.Policy.filter ~ip:ip1);
            Alcotest.(check bool)
              "other ip denied" false
              (Policy.filter_allows_connect p.Policy.filter ~ip:evil));
    Alcotest.test_case "reject junk" `Quick (fun () ->
        List.iter
          (fun s ->
            match Policy.parse s with
            | Ok _ -> Alcotest.failf "expected %S to be rejected" s
            | Error _ -> ())
          [
            "secrets"; "secrets:RWW"; ":R"; "; sys="; "; sys=bogus";
            "; sys=connect()"; "a:R a:RW"; "; nonsense=3";
          ]);
    Alcotest.test_case "roundtrips" `Quick (fun () ->
        List.iter roundtrip
          [
            ""; "secrets:R; sys=none"; "a:U b:RWX; sys=all";
            "; sys=net,file,connect(1.2.3.4)";
          ]);
    Alcotest.test_case "filter_leq lattice" `Quick (fun () ->
        let atoms_net =
          Policy.Sys_atoms [ Policy.Cat Encl_kernel.Sysno.Cat_net ]
        in
        let connect_only =
          Policy.Sys_atoms
            [ Policy.Connect_to [ Encl_kernel.Net.addr_of_string "1.2.3.4" ] ]
        in
        Alcotest.(check bool) "none <= all" true (Policy.filter_leq Policy.Sys_none Policy.Sys_all);
        Alcotest.(check bool) "all </= none" false (Policy.filter_leq Policy.Sys_all Policy.Sys_none);
        Alcotest.(check bool) "net <= all" true (Policy.filter_leq atoms_net Policy.Sys_all);
        Alcotest.(check bool) "connect-list <= net" true (Policy.filter_leq connect_only atoms_net);
        Alcotest.(check bool) "net </= connect-list" false (Policy.filter_leq atoms_net connect_only));
  ]

(* ------------------------------------------------------------------ *)
(* Views *)

let view_tests =
  [
    Alcotest.test_case "figure-1 default view" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        let policy = Result.get_ok (Policy.parse "secrets:R; sys=none") in
        match View.compute ~graph:image.Image.graph ~deps:[ "libFx" ] ~policy with
        | Error e -> Alcotest.fail e
        | Ok v ->
            let acc p = View.access v p in
            Alcotest.(check string) "libFx" "RWX" (Types.access_name (acc "libFx"));
            Alcotest.(check string) "img (transitive)" "RWX" (Types.access_name (acc "img"));
            Alcotest.(check string) "secrets (modifier)" "R" (Types.access_name (acc "secrets"));
            Alcotest.(check string) "main unmapped" "U" (Types.access_name (acc "main"));
            Alcotest.(check string) "os unmapped" "U" (Types.access_name (acc "os")));
    Alcotest.test_case "subset ordering" `Quick (fun () ->
        let a = View.of_list [ ("x", Types.R) ] in
        let b = View.of_list [ ("x", Types.RWX); ("y", Types.R) ] in
        Alcotest.(check bool) "a <= b" true (View.subset a b);
        Alcotest.(check bool) "b </= a" false (View.subset b a));
    Alcotest.test_case "unknown package in policy rejected" `Quick (fun () ->
        let image = Fixtures.figure1_image () in
        let policy = Result.get_ok (Policy.parse "ghost:R") in
        match View.compute ~graph:image.Image.graph ~deps:[ "libFx" ] ~policy with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Clustering *)

let cluster_tests =
  [
    Alcotest.test_case "identical vectors cluster" `Quick (fun () ->
        let v1 = View.of_list [ ("a", Types.RWX); ("b", Types.RWX); ("c", Types.R) ] in
        let v2 = View.of_list [ ("a", Types.R); ("b", Types.R) ] in
        let c =
          Cluster.compute ~packages:[ "a"; "b"; "c"; "d" ] ~views:[ v1; v2 ]
            ~pinned:[]
        in
        (* a,b share (RWX,R); c is (R,U); d is (U,U). *)
        Alcotest.(check int) "3 clusters" 3 (Cluster.count c);
        Alcotest.(check bool)
          "a with b" true
          (Cluster.cluster_of c "a" = Cluster.cluster_of c "b");
        Alcotest.(check bool)
          "c alone" true
          (Cluster.cluster_of c "c" <> Cluster.cluster_of c "a"));
    Alcotest.test_case "pinned package is singleton" `Quick (fun () ->
        let c =
          Cluster.compute ~packages:[ "a"; "b"; "super" ] ~views:[]
            ~pinned:[ "super" ]
        in
        (* With no views, a and b share the empty vector; super is pinned. *)
        Alcotest.(check int) "2 clusters" 2 (Cluster.count c);
        Alcotest.(check bool)
          "super alone" true
          (Cluster.members c (Option.get (Cluster.cluster_of c "super")) = [ "super" ]));
  ]

(* ------------------------------------------------------------------ *)
(* Property tests: views, clustering, policies *)

let access_gen =
  QCheck.Gen.oneofl [ Types.U; Types.R; Types.RW; Types.RWX ]

let pkg_names = [ "a"; "b"; "c"; "d"; "e" ]

let view_gen =
  QCheck.Gen.(
    let* rights = list_repeat (List.length pkg_names) access_gen in
    return (View.of_list (List.combine pkg_names rights)))

let view_arb =
  QCheck.make
    ~print:(fun v -> Format.asprintf "%a" View.pp v)
    view_gen

let prop_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subset is reflexive" ~count:200 view_arb
         (fun v -> View.subset v v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"subset is transitive" ~count:200
         (QCheck.triple view_arb view_arb view_arb)
         (fun (a, b, c) ->
           QCheck.assume (View.subset a b && View.subset b c);
           View.subset a c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"restrict_to is the greatest lower bound" ~count:200
         (QCheck.triple view_arb view_arb view_arb)
         (fun (a, b, c) ->
           let m = View.restrict_to a b in
           View.subset m a && View.subset m b
           && ((not (View.subset c a && View.subset c b)) || View.subset c m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"clusters partition packages by access vector"
         ~count:200
         (QCheck.pair view_arb view_arb)
         (fun (v1, v2) ->
           let c =
             Cluster.compute ~packages:pkg_names ~views:[ v1; v2 ] ~pinned:[]
           in
           let vector p = (View.access v1 p, View.access v2 p) in
           (* same cluster <=> same vector, and every package is placed *)
           List.for_all
             (fun p ->
               match Cluster.cluster_of c p with
               | None -> false
               | Some i ->
                   List.for_all (fun q -> vector q = vector p) (Cluster.members c i))
             pkg_names
           && List.for_all
                (fun p ->
                  List.for_all
                    (fun q ->
                      (vector p = vector q)
                      = (Cluster.cluster_of c p = Cluster.cluster_of c q))
                    pkg_names)
                pkg_names));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"filter_leq is reflexive and Sys_none is bottom"
         ~count:200
         (QCheck.make
            QCheck.Gen.(
              oneof
                [
                  return Policy.Sys_none;
                  return Policy.Sys_all;
                  map
                    (fun cats ->
                      Policy.Sys_atoms (List.map (fun c -> Policy.Cat c) cats))
                    (list_size (int_range 1 3)
                       (oneofl Encl_kernel.Sysno.all_categories));
                ]))
         (fun f ->
           Policy.filter_leq f f
           && Policy.filter_leq Policy.Sys_none f
           && Policy.filter_leq f Policy.Sys_all));
    (let policy_arb =
       let cat_gen =
         QCheck.Gen.oneofl Encl_kernel.Sysno.all_categories
       in
       let filter_gen =
         QCheck.Gen.(
           oneof
             [
               return Policy.Sys_none;
               return Policy.Sys_all;
               map
                 (fun cats ->
                   Policy.Sys_atoms (List.map (fun c -> Policy.Cat c) cats))
                 (list_size (int_range 1 3) cat_gen);
             ])
       in
       let gen =
         QCheck.Gen.(
           let* n = int_range 0 3 in
           let* pkgs =
             list_repeat n (oneofl [ "alpha"; "beta"; "gamma"; "delta" ])
           in
           let pkgs = List.sort_uniq compare pkgs in
           let* rights = list_repeat (List.length pkgs) access_gen in
           let* filter = filter_gen in
           return { Policy.modifiers = List.combine pkgs rights; filter })
       in
       QCheck.make ~print:Policy.to_string gen
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make ~name:"policy to_string/parse roundtrip" ~count:300
          policy_arb
          (fun p ->
            match Policy.parse (Policy.to_string p) with
            | Error _ -> false
            | Ok p' -> Policy.to_string p = Policy.to_string p')));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end enforcement, parameterized by backend *)

let enforcement_tests backend backend_tag =
  let tc name f = Alcotest.test_case (backend_tag ^ ": " ^ name) `Quick f in
  let fails name f = check_fails (backend_tag ^ ": " ^ name) f in
  [
    tc "init computes expected view" (fun () ->
        let _, _, lb = Fixtures.boot backend in
        match Lb.view_of lb "rcl" with
        | None -> Alcotest.fail "rcl not registered"
        | Some v ->
            Alcotest.(check string) "secrets" "R" (Types.access_name (View.access v "secrets"));
            Alcotest.(check string) "main" "U" (Types.access_name (View.access v "main")));
    tc "enclosure can read shared secret" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"secrets" "original" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        let data = Cpu.read_bytes machine.Machine.cpu ~addr ~len:19 in
        Lb.epilog lb ~site:"enclosure:rcl";
        Alcotest.(check string) "secret readable" "original-image-bits" (Bytes.to_string data));
    fails "enclosure cannot write read-only secret" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"secrets" "original" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        Cpu.write8 machine.Machine.cpu addr 0);
    fails "enclosure cannot read main's private key" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"main" "private_key" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        ignore (Cpu.read8 machine.Machine.cpu addr));
    fails "enclosure cannot call os functions" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"os" "getenv" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        Cpu.fetch machine.Machine.cpu ~addr);
    tc "enclosure can call its dependencies" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"libFx" "invert" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        Cpu.fetch machine.Machine.cpu ~addr;
        let addr2 = Fixtures.sym_addr image ~pkg:"img" "decode" in
        Cpu.fetch machine.Machine.cpu ~addr:addr2;
        Lb.epilog lb ~site:"enclosure:rcl");
    fails "syscalls are denied inside rcl" (fun () ->
        let _, _, lb = Fixtures.boot backend in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        ignore (Lb.syscall lb K.Getuid));
    tc "syscalls work from trusted code" (fun () ->
        let _, _, lb = Fixtures.boot backend in
        match Lb.syscall lb K.Getuid with
        | Ok uid -> Alcotest.(check int) "uid" 1000 uid
        | Error e -> Alcotest.fail (K.errno_name e));
    fails "prolog from unverified call-site" (fun () ->
        let _, _, lb = Fixtures.boot backend in
        Lb.prolog lb ~name:"rcl" ~site:"evil:site");
    tc "trusted code can access everything" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        ignore lb;
        let addr = Fixtures.sym_addr image ~pkg:"main" "private_key" in
        Alcotest.(check int) "read ok" (Char.code 's') (Cpu.read8 machine.Machine.cpu addr));
    tc "transfer moves arena ownership" (fun () ->
        let machine, _, lb = Fixtures.boot backend in
        match Lb.syscall lb (K.Mmap { len = 4 * Phys.page_size }) with
        | Error e -> Alcotest.fail (K.errno_name e)
        | Ok addr ->
            Lb.transfer lb ~addr ~len:(4 * Phys.page_size) ~to_pkg:"img"
              ~site:"runtime.mallocgc";
            Alcotest.(check (option string)) "owner" (Some "img") (Lb.owner_of lb ~addr);
            (* The enclosure may use img's arena. *)
            Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
            Cpu.write8 machine.Machine.cpu addr 42;
            Alcotest.(check int) "readback" 42 (Cpu.read8 machine.Machine.cpu addr);
            Lb.epilog lb ~site:"enclosure:rcl");
    fails "transferred main arena is not accessible in rcl" (fun () ->
        let machine, _, lb = Fixtures.boot backend in
        match Lb.syscall lb (K.Mmap { len = Phys.page_size }) with
        | Error _ -> Alcotest.fail "mmap failed"
        | Ok addr ->
            Lb.transfer lb ~addr ~len:Phys.page_size ~to_pkg:"main"
              ~site:"runtime.mallocgc";
            Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
            ignore (Cpu.read8 machine.Machine.cpu addr));
    tc "with_trusted restores the enclosure environment" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let secret = Fixtures.sym_addr image ~pkg:"main" "private_key" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        Lb.with_trusted lb (fun () ->
            Alcotest.(check int) "trusted read" (Char.code 's')
              (Cpu.read8 machine.Machine.cpu secret));
        (match Cpu.read8 machine.Machine.cpu secret with
        | exception Cpu.Fault _ -> ()
        | _ -> Alcotest.fail "environment not restored");
        Lb.epilog lb ~site:"enclosure:rcl");
    tc "fault count increments" (fun () ->
        let machine, image, lb = Fixtures.boot backend in
        let addr = Fixtures.sym_addr image ~pkg:"main" "private_key" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        let result =
          Lb.run_protected lb (fun () -> Cpu.read8 machine.Machine.cpu addr)
        in
        Alcotest.(check bool) "faulted" true (Result.is_error result);
        Alcotest.(check bool) "counted" true (Lb.fault_count lb >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Dynamic registration (the Python-style partial-Init path) *)

let init_error_tests =
  let module Objfile = Encl_elf.Objfile in
  let image_with_policy policy =
    let objfiles =
      [
        Objfile.make ~pkg:"lib" ~functions:[ Objfile.sym "f" 16 ] ();
        Objfile.make ~pkg:"main" ~imports:[ "lib" ]
          ~functions:[ Objfile.sym "main" 16; Objfile.sym "b" 16 ]
          ~enclosures:
            [
              {
                Objfile.enc_name = "e";
                enc_policy = policy;
                enc_closure = "b";
                enc_deps = [ "lib" ];
              };
            ]
          ()
      ]
    in
    Result.get_ok (Encl_elf.Linker.link ~objfiles ~entry:"main")
  in
  [
    Alcotest.test_case "init rejects malformed policy literals" `Quick (fun () ->
        let image = image_with_policy "; sys=time-travel" in
        let machine = Machine.create () in
        Alcotest.(check bool) "error" true
          (Result.is_error (Lb.init ~machine ~backend:Lb.Mpk ~image ())));
    Alcotest.test_case "init rejects policies naming unknown packages" `Quick
      (fun () ->
        let image = image_with_policy "phantom:R; sys=none" in
        let machine = Machine.create () in
        Alcotest.(check bool) "error" true
          (Result.is_error (Lb.init ~machine ~backend:Lb.Vtx ~image ())));
    Alcotest.test_case "binary scan refuses foreign PKRU writers" `Quick (fun () ->
        let image = image_with_policy "; sys=none" in
        let machine = Machine.create () in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Lb.init ~machine ~backend:Lb.Mpk ~image
                ~binary_scan:[ ("lib", "sneaky_wrpkru") ]
                ()));
        let machine2 = Machine.create () in
        Alcotest.(check bool) "litterbox.user allowed" true
          (Result.is_ok
             (Lb.init ~machine:machine2 ~backend:Lb.Mpk
                ~image:(image_with_policy "; sys=none")
                ~binary_scan:[ ("litterbox.user", "switch_gate") ]
                ())));
    Alcotest.test_case "epilog without prolog faults" `Quick (fun () ->
        let _, _, lb = Fixtures.boot Lb.Mpk in
        match Lb.epilog lb ~site:"enclosure:rcl" with
        | exception Lb.Fault _ -> ()
        | () -> Alcotest.fail "stray epilog accepted");
    Alcotest.test_case "fault log records root causes" `Quick (fun () ->
        let machine, image, lb = Fixtures.boot Lb.Mpk in
        let addr = Fixtures.sym_addr image ~pkg:"main" "private_key" in
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        ignore (Lb.run_protected lb (fun () -> Cpu.read8 machine.Machine.cpu addr));
        Lb.epilog lb ~site:"enclosure:rcl";
        match Lb.fault_log lb with
        | trace :: _ ->
            let contains s sub =
              let n = String.length sub and h = String.length s in
              let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "names the package" true (contains trace "main")
        | [] -> Alcotest.fail "no trace recorded");
  ]

let marker_tests =
  [
    Alcotest.test_case "all-covering view still gets a distinct PKRU" `Quick
      (fun () ->
        (* An enclosure whose memory view spans every package must still
           be distinguishable from trusted code in the seccomp dispatch:
           the marker key guarantees it. *)
        let module Objfile = Encl_elf.Objfile in
        let objfiles =
          [
            Objfile.make ~pkg:"lib" ~functions:[ Objfile.sym "f" 16 ] ();
            Objfile.make ~pkg:"main" ~imports:[ "lib" ]
              ~functions:[ Objfile.sym "main" 16; Objfile.sym "b" 16 ]
              ~enclosures:
                [
                  {
                    Objfile.enc_name = "everything";
                    enc_policy = "main:RWX; sys=none";
                    enc_closure = "b";
                    enc_deps = [ "lib" ];
                  };
                ]
              ();
          ]
        in
        let image =
          Result.get_ok (Encl_elf.Linker.link ~objfiles ~entry:"main")
        in
        let machine = Machine.create () in
        let lb = Result.get_ok (Lb.init ~machine ~backend:Lb.Mpk ~image ()) in
        Lb.prolog lb ~name:"everything" ~site:"enclosure:everything";
        (match Lb.syscall lb K.Getuid with
        | exception Lb.Fault _ -> ()
        | exception K.Syscall_killed _ -> ()
        | _ -> Alcotest.fail "enclosure shared the trusted PKRU value");
        Lb.epilog lb ~site:"enclosure:everything");
  ]

let dynamic_tests =
  let module Section = Encl_elf.Section in
  let module Mm = Encl_kernel.Mm in
  let mmap_section machine ~name ~owner ~kind ~len =
    let addr =
      Mm.map machine.Machine.mm ~len ~perms:{ Pte.r = true; w = true; x = false }
    in
    Section.make ~name ~owner ~kind ~addr ~size:len
  in
  [
    Alcotest.test_case "register_package extends views by default" `Quick
      (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Vtx in
        let sec =
          mmap_section machine ~name:"newmod.objs" ~owner:"newmod"
            ~kind:Section.Arena ~len:8192
        in
        (match
           Lb.register_package lb ~name:"newmod" ~imports:[] ~sections:[ sec ]
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* A dynamically discovered import makes it part of rcl's view. *)
        (match Lb.add_import lb ~importer:"libFx" ~imported:"newmod" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let v = Option.get (Lb.view_of lb "rcl") in
        Alcotest.(check string) "visible" "RWX"
          (Types.access_name (View.access v "newmod"));
        (* And it is actually accessible inside the enclosure. *)
        Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
        Cpu.write8 machine.Machine.cpu sec.Encl_elf.Section.addr 5;
        Alcotest.(check int) "write ok" 5
          (Cpu.read8 machine.Machine.cpu sec.Encl_elf.Section.addr);
        Lb.epilog lb ~site:"enclosure:rcl");
    Alcotest.test_case "page sharing between packages is refused" `Quick
      (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Mpk in
        let sec =
          mmap_section machine ~name:"a.objs" ~owner:"a" ~kind:Section.Arena
            ~len:4096
        in
        (match Lb.register_package lb ~name:"a" ~imports:[] ~sections:[ sec ] with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (* A second package claiming the same page must be rejected
           (the layout assumption of paper 2.3). *)
        let evil_twin =
          Encl_elf.Section.make ~name:"b.objs" ~owner:"b" ~kind:Section.Arena
            ~addr:sec.Encl_elf.Section.addr ~size:4096
        in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Lb.register_package lb ~name:"b" ~imports:[] ~sections:[ evil_twin ])));
    Alcotest.test_case "duplicate package registration refused" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Vtx in
        let sec =
          mmap_section machine ~name:"m.objs" ~owner:"m" ~kind:Section.Arena
            ~len:4096
        in
        Alcotest.(check bool) "first ok" true
          (Result.is_ok (Lb.register_package lb ~name:"m" ~imports:[] ~sections:[ sec ]));
        Alcotest.(check bool) "second refused" true
          (Result.is_error (Lb.register_package lb ~name:"m" ~imports:[] ~sections:[])));
    Alcotest.test_case "dynamic enclosure on a dynamic package" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Mpk in
        ignore machine;
        let sec =
          mmap_section machine ~name:"plug.objs" ~owner:"plug" ~kind:Section.Arena
            ~len:4096
        in
        (match Lb.register_package lb ~name:"plug" ~imports:[] ~sections:[ sec ] with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        (match
           Lb.register_enclosure lb ~name:"plug_enc" ~owner:"main" ~deps:[ "plug" ]
             ~policy:"; sys=none" ~closure_addr:0
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Lb.prolog lb ~name:"plug_enc" ~site:"enclosure:plug_enc";
        Cpu.write8 machine.Machine.cpu sec.Encl_elf.Section.addr 9;
        Lb.epilog lb ~site:"enclosure:plug_enc");
  ]

(* ------------------------------------------------------------------ *)
(* Microbenchmark-shaped cost checks (Table 1 calibration) *)

let cost_tests =
  let switch_cost backend =
    let machine, _, lb = Fixtures.boot backend in
    let t0 = Clock.now machine.Machine.clock in
    Lb.prolog lb ~name:"rcl" ~site:"enclosure:rcl";
    Lb.epilog lb ~site:"enclosure:rcl";
    Clock.now machine.Machine.clock - t0
  in
  [
    Alcotest.test_case "MPK switch pair costs 41ns" `Quick (fun () ->
        Alcotest.(check int) "prolog+epilog" 41 (switch_cost Lb.Mpk));
    Alcotest.test_case "VTX switch pair costs 879ns" `Quick (fun () ->
        Alcotest.(check int) "prolog+epilog" 879 (switch_cost Lb.Vtx));
    Alcotest.test_case "LWC switch pair costs two lwSwitch calls" `Quick
      (fun () ->
        Alcotest.(check int) "prolog+epilog"
          (2 * Costs.default.Costs.lwc_switch)
          (switch_cost Lb.Lwc));
    Alcotest.test_case "LWC syscalls cost the baseline" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Lwc in
        Lb.prolog lb ~name:"io_enc" ~site:"enclosure:io_enc";
        let t0 = Clock.now machine.Machine.clock in
        ignore (Lb.syscall lb K.Getuid);
        Alcotest.(check int) "syscall" 387 (Clock.now machine.Machine.clock - t0);
        Lb.epilog lb ~site:"enclosure:io_enc");
    Alcotest.test_case "MPK 4-page transfer costs 1002ns" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Mpk in
        let addr = Result.get_ok (Lb.syscall lb (K.Mmap { len = 4 * Phys.page_size })) in
        let t0 = Clock.now machine.Machine.clock in
        Lb.transfer lb ~addr ~len:(4 * Phys.page_size) ~to_pkg:"img"
          ~site:"runtime.mallocgc";
        Alcotest.(check int) "transfer" 1002 (Clock.now machine.Machine.clock - t0));
    Alcotest.test_case "VTX 4-page transfer costs 158ns" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Vtx in
        let addr = Result.get_ok (Lb.syscall lb (K.Mmap { len = 4 * Phys.page_size })) in
        let t0 = Clock.now machine.Machine.clock in
        Lb.transfer lb ~addr ~len:(4 * Phys.page_size) ~to_pkg:"img"
          ~site:"runtime.mallocgc";
        Alcotest.(check int) "transfer" 158 (Clock.now machine.Machine.clock - t0));
    Alcotest.test_case "MPK getuid costs 523ns (enclosed)" `Quick (fun () ->
        (* The Table 1 microbenchmark performs getuid from inside an
           enclosure whose filter permits it. *)
        let machine, _, lb = Fixtures.boot Lb.Mpk in
        Lb.prolog lb ~name:"io_enc" ~site:"enclosure:io_enc";
        let t0 = Clock.now machine.Machine.clock in
        ignore (Lb.syscall lb K.Getuid);
        Alcotest.(check int) "syscall" 523 (Clock.now machine.Machine.clock - t0);
        Lb.epilog lb ~site:"enclosure:io_enc");
    Alcotest.test_case "MPK getuid from trusted code is fast-path" `Quick
      (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Mpk in
        let t0 = Clock.now machine.Machine.clock in
        ignore (Lb.syscall lb K.Getuid);
        Alcotest.(check int) "syscall" 417 (Clock.now machine.Machine.clock - t0));
    Alcotest.test_case "VTX getuid costs 4126ns (enclosed)" `Quick (fun () ->
        let machine, _, lb = Fixtures.boot Lb.Vtx in
        Lb.prolog lb ~name:"io_enc" ~site:"enclosure:io_enc";
        let t0 = Clock.now machine.Machine.clock in
        ignore (Lb.syscall lb K.Getuid);
        Alcotest.(check int) "syscall" 4126 (Clock.now machine.Machine.clock - t0);
        Lb.epilog lb ~site:"enclosure:io_enc");
  ]

let () =
  Alcotest.run "litterbox"
    [
      ("policy", policy_tests);
      ("view", view_tests);
      ("cluster", cluster_tests);
      ("props", prop_tests);
      ("enforce-mpk", enforcement_tests Lb.Mpk "mpk");
      ("enforce-vtx", enforcement_tests Lb.Vtx "vtx");
      ("enforce-lwc", enforcement_tests Lb.Lwc "lwc");
      ("dynamic", dynamic_tests);
      ("marker-key", marker_tests);
      ("init-errors", init_error_tests);
      ("costs", cost_tests);
    ]
