(* minigo-run: compile and run mini-Go source files under a LitterBox
   backend.

   Usage:
     dune exec bin/minigo_run.exe -- [--backend mpk|vtx|lwc|none] FILE...

   Each FILE holds one package; the program needs a main package with a
   main() function. See lib/minigo for the language (notably the
   paper's `with "policy" func() { ... }` enclosure expressions and
   `import pkg with "policy"` tags). *)

module Minigo = Encl_minigo.Minigo
module Runtime = Encl_golike.Runtime
module Lb = Encl_litterbox.Litterbox
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run backend files =
  let config =
    match backend with
    | "none" -> Runtime.baseline
    | "vtx" -> Runtime.with_backend Lb.Vtx
    | "lwc" -> Runtime.with_backend Lb.Lwc
    | _ -> Runtime.with_backend Lb.Mpk
  in
  let sources = List.map read_file files in
  match Minigo.build ~config ~sources () with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok t -> (
      match Minigo.run_main t with
      | Ok () ->
          print_string (Minigo.output t);
          0
      | Error e ->
          print_string (Minigo.output t);
          prerr_endline ("fault: " ^ e);
          2)

let backend_arg =
  Arg.(
    value
    & opt string "mpk"
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"mpk, vtx, lwc, or none (baseline).")

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"Source files.")

let cmd =
  Cmd.v
    (Cmd.info "minigo-run" ~version:"1.0"
       ~doc:"Run mini-Go programs with enclosures")
    Term.(const run $ backend_arg $ files_arg)

let () = exit (Cmd.eval' cmd)
