(* Quick calibration driver: prints the macro scenarios' measurements so
   workload constants can be tuned against the paper's Table 2. Not part
   of the benchmark harness (see bench/main.ml). *)

module Scenarios = Encl_apps.Scenarios
module Lb = Encl_litterbox.Litterbox
module Plot = Encl_pylike.Plot_experiment
module Pyrt = Encl_pylike.Pyrt

let configs = [ None; Some Lb.Mpk; Some Lb.Vtx ]

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let run name f = if which = "all" || which = name then f () in
  run "bild" (fun () ->
      Printf.printf "== bild (1024x1024 invert) ==\n%!";
      let base = ref 0.0 in
      List.iter
        (fun config ->
          let r = Scenarios.bild config ~iters:2 () in
          let ms = float_of_int r.Scenarios.b_ns_per_invert /. 1e6 in
          if config = None then base := ms;
          Printf.printf "%-9s %8.2f ms  (%.2fx)  transfers/iter=%d checksum=%d\n%!"
            (Scenarios.config_name config) ms (ms /. !base)
            r.Scenarios.b_transfers r.Scenarios.b_checksum)
        configs);
  run "http" (fun () ->
      Printf.printf "== HTTP ==\n%!";
      let base = ref 0.0 in
      List.iter
        (fun config ->
          let r = Scenarios.http config ~requests:1000 () in
          if config = None then base := r.Scenarios.h_req_per_sec;
          Printf.printf "%-9s %9.0f req/s (slowdown %.2fx) syscalls/req=%.1f\n%!"
            (Scenarios.config_name config) r.Scenarios.h_req_per_sec
            (!base /. r.Scenarios.h_req_per_sec)
            r.Scenarios.h_syscalls_per_req)
        configs);
  run "fasthttp" (fun () ->
      Printf.printf "== FastHTTP ==\n%!";
      let base = ref 0.0 in
      List.iter
        (fun config ->
          let r = Scenarios.fasthttp config ~requests:1000 () in
          if config = None then base := r.Scenarios.h_req_per_sec;
          Printf.printf "%-9s %9.0f req/s (slowdown %.2fx) syscalls/req=%.1f\n%!"
            (Scenarios.config_name config) r.Scenarios.h_req_per_sec
            (!base /. r.Scenarios.h_req_per_sec)
            r.Scenarios.h_syscalls_per_req)
        configs);
  run "wiki" (fun () ->
      Printf.printf "== Wiki (Figure 5) ==\n%!";
      let base = ref 0.0 in
      List.iter
        (fun config ->
          let r = Scenarios.wiki config ~requests:400 () in
          if config = None then base := r.Scenarios.h_req_per_sec;
          Printf.printf "%-9s %9.0f req/s (slowdown %.2fx) syscalls/req=%.1f\n%!"
            (Scenarios.config_name config) r.Scenarios.h_req_per_sec
            (!base /. r.Scenarios.h_req_per_sec)
            r.Scenarios.h_syscalls_per_req)
        configs;
      match Scenarios.wiki_check (Some Lb.Vtx) with
      | Ok body -> Printf.printf "functional check: %s\n%!" body
      | Error e -> Printf.printf "functional check FAILED: %s\n%!" e);
  run "python" (fun () ->
      Printf.printf "== Python (6.4) ==\n%!";
      let base = Plot.run ~mode:Pyrt.Conservative ~points:250_000 () in
      Printf.printf "baseline      %a\n%!" (fun _ r -> Format.printf "%a" Plot.pp r) base;
      let cons = Plot.run ~backend:Lb.Vtx ~mode:Pyrt.Conservative ~points:250_000 () in
      Printf.printf "conservative  %a (%.1fx)\n%!"
        (fun _ r -> Format.printf "%a" Plot.pp r)
        cons
        (float_of_int cons.Plot.total_ns /. float_of_int base.Plot.total_ns);
      let dec = Plot.run ~backend:Lb.Vtx ~mode:Pyrt.Decoupled ~points:250_000 () in
      Printf.printf "decoupled     %a (%.2fx)\n%!"
        (fun _ r -> Format.printf "%a" Plot.pp r)
        dec
        (float_of_int dec.Plot.total_ns /. float_of_int base.Plot.total_ns))
