(* Runs the §6.5 attack suite and prints the outcome matrix. *)

module Malice = Encl_apps.Malice
module Lb = Encl_litterbox.Litterbox

let () =
  let backend =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "vtx" then Lb.Vtx else Lb.Mpk
  in
  Printf.printf "attack suite under %s\n\n" (Lb.backend_name backend);
  Printf.printf "%-14s %-20s %-6s %-8s %-6s %s\n" "attack" "mitigation" "legit"
    "blocked" "exfil" "detail";
  List.iter
    (fun attack ->
      List.iter
        (fun mitigation ->
          let backend =
            match mitigation with Malice.Unprotected -> None | _ -> Some backend
          in
          let o = Malice.run ~backend attack mitigation in
          Printf.printf "%-14s %-20s %-6b %-8b %-6d %s\n%!"
            (Malice.attack_name attack)
            (Malice.mitigation_name mitigation)
            o.Malice.legit_ok o.Malice.attack_blocked o.Malice.exfiltrated
            (String.sub o.Malice.detail 0 (min 48 (String.length o.Malice.detail))))
        Malice.all_mitigations;
      print_newline ())
    Malice.all_attacks
