(* enclosure-report: inspect the isolation structure of the bundled
   programs — dependence graph, enclosure memory views, meta-package
   clustering, linked layout, and the verified call-site list.

   Usage:
     dune exec bin/enclosure_report.exe -- graph wiki
     dune exec bin/enclosure_report.exe -- views bild
     dune exec bin/enclosure_report.exe -- clusters fasthttp --backend mpk
     dune exec bin/enclosure_report.exe -- layout figure1
     dune exec bin/enclosure_report.exe -- verif wiki *)

module Runtime = Encl_golike.Runtime
module Lb = Encl_litterbox.Litterbox
module View = Encl_litterbox.View
module Cluster = Encl_litterbox.Cluster
module Image = Encl_elf.Image
module Objfile = Encl_elf.Objfile
module Graph = Encl_pkg.Graph
open Cmdliner

(* ------------------------------------------------------------------ *)
(* The bundled programs *)

let figure1_packages () =
  [
    Runtime.package "main"
      ~imports:[ "libFx"; "secrets"; "os" ]
      ~functions:[ ("main", 128); ("rcl_body", 64) ]
      ~globals:[ ("private_key", 64, None) ]
      ~enclosures:
        [
          {
            Objfile.enc_name = "rcl";
            enc_policy = "secrets:R; sys=none";
            enc_closure = "rcl_body";
            enc_deps = [ "libFx" ];
          };
        ]
      ();
    Runtime.package "libFx" ~imports:[ "img" ] ~functions:[ ("invert", 256) ] ();
    Runtime.package "img" ~functions:[ ("decode", 128) ] ();
    Runtime.package "secrets" ~functions:[ ("load", 64) ] ();
    Runtime.package "os" ~functions:[ ("getenv", 64) ] ();
  ]

let bild_packages () =
  Runtime.package "main"
    ~imports:[ Encl_apps.Bild.pkg; "secrets" ]
    ~functions:[ ("main", 128); ("rcl_body", 64) ]
    ~enclosures:
      [
        {
          Objfile.enc_name = "rcl";
          enc_policy = "secrets:R; sys=none";
          enc_closure = "rcl_body";
          enc_deps = [ Encl_apps.Bild.pkg ];
        };
      ]
    ()
  :: Runtime.package "secrets" ~functions:[ ("load", 64) ] ()
  :: Encl_apps.Bild.packages ()

let fasthttp_packages () =
  Runtime.package "main"
    ~imports:[ Encl_apps.Fasthttp.pkg ]
    ~functions:[ ("main", 128); ("srv_body", 64) ]
    ~enclosures:
      [
        {
          Objfile.enc_name = "fasthttp_srv";
          enc_policy = "; sys=net";
          enc_closure = "srv_body";
          enc_deps = [ Encl_apps.Fasthttp.pkg ];
        };
      ]
    ()
  :: Encl_apps.Fasthttp.packages ()

let wiki_packages () =
  Encl_apps.Wiki.main_package () :: Encl_apps.Wiki.packages ()

let programs =
  [
    ("figure1", figure1_packages);
    ("bild", bild_packages);
    ("fasthttp", fasthttp_packages);
    ("wiki", wiki_packages);
  ]

let boot name backend =
  match List.assoc_opt name programs with
  | None ->
      Error
        (Printf.sprintf "unknown program %s (try: %s)" name
           (String.concat ", " (List.map fst programs)))
  | Some mk -> (
      match Runtime.boot (Runtime.with_backend backend) ~packages:(mk ()) ~entry:"main" with
      | Ok rt -> Ok rt
      | Error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Commands *)

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("enclosure-report: " ^ e);
      exit 1

let graph_cmd name =
  let rt = or_die (boot name Lb.Mpk) in
  print_string (Graph.to_dot (Runtime.image rt).Image.graph)

let views_cmd name =
  let rt = or_die (boot name Lb.Mpk) in
  let lb = Option.get (Runtime.lb rt) in
  List.iter
    (fun enc ->
      Format.printf "@[<v 2>enclosure %s:@,%a@]@." enc View.pp
        (Option.get (Lb.view_of lb enc)))
    (Lb.enclosure_names lb)

let clusters_cmd name backend =
  let rt = or_die (boot name backend) in
  let lb = Option.get (Runtime.lb rt) in
  Format.printf "%a@." Cluster.pp (Lb.cluster lb)

let layout_cmd name =
  let rt = or_die (boot name Lb.Mpk) in
  Format.printf "%a@." Image.pp_layout (Runtime.image rt)

let verif_cmd name =
  let rt = or_die (boot name Lb.Mpk) in
  let image = Runtime.image rt in
  List.iter
    (fun (v : Image.verif_entry) ->
      Printf.printf "%-28s %s\n" v.Image.ve_site (Image.hook_name v.Image.ve_hook))
    image.Image.verif

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring *)

let program_arg =
  let doc =
    "Program to inspect: " ^ String.concat ", " (List.map fst programs) ^ "."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let backend_arg =
  let parse = function
    | "mpk" -> Ok Lb.Mpk
    | "vtx" -> Ok Lb.Vtx
    | s -> Error (`Msg ("unknown backend " ^ s))
  in
  let print ppf b = Format.pp_print_string ppf (Lb.backend_name b) in
  Arg.(
    value
    & opt (conv (parse, print)) Lb.Mpk
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"mpk or vtx.")

let make_cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ program_arg)

let cmds =
  [
    make_cmd "graph" "Print the package-dependence graph as Graphviz dot." graph_cmd;
    make_cmd "views" "Print every enclosure's computed memory view." views_cmd;
    Cmd.v
      (Cmd.info "clusters" ~doc:"Print the meta-package clustering.")
      Term.(const (fun n b -> clusters_cmd n b) $ program_arg $ backend_arg);
    make_cmd "layout" "Print the linked executable layout (Figure 4)." layout_cmd;
    make_cmd "verif" "Print the verified LitterBox call-site list." verif_cmd;
  ]

let () =
  let info =
    Cmd.info "enclosure-report" ~version:"1.0"
      ~doc:"Inspect enclosure isolation structure"
  in
  exit (Cmd.eval (Cmd.group info cmds))
