(* Prints a Figure-4-style view of a linked executable: the bild program's
   ELF sections, segregated marked packages, and LitterBox sections. *)

module Objfile = Encl_elf.Objfile
module Linker = Encl_elf.Linker
module Image = Encl_elf.Image

let () =
  let secrets = Objfile.make ~pkg:"secrets" ~globals:[ Objfile.sym "original" 64 ] () in
  let img = Objfile.make ~pkg:"img" ~functions:[ Objfile.sym "decode" 128 ] () in
  let libfx =
    Objfile.make ~pkg:"libFx" ~imports:[ "img" ]
      ~functions:[ Objfile.sym "invert" 256 ]
      ()
  in
  let main =
    Objfile.make ~pkg:"main"
      ~imports:[ "libFx"; "secrets" ]
      ~functions:[ Objfile.sym "main" 128; Objfile.sym "rcl_body" 64 ]
      ~globals:[ Objfile.sym "private_key" 64 ]
      ~enclosures:
        [
          {
            Objfile.enc_name = "rcl";
            enc_policy = "secrets:R; sys=none";
            enc_closure = "rcl_body";
            enc_deps = [ "libFx" ];
          };
        ]
      ()
  in
  match Linker.link ~objfiles:[ img; libfx; secrets; main ] ~entry:"main" with
  | Error e -> prerr_endline (Linker.error_message e)
  | Ok image -> Format.printf "%a@." Image.pp_layout image
