lib/kernel/vfs.mli: Bytes
