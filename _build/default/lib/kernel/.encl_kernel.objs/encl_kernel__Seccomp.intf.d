lib/kernel/seccomp.mli: Bpf Mpk Sysno
