lib/kernel/sysno.ml: Hashtbl List
