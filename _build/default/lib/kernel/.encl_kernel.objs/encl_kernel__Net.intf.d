lib/kernel/net.mli: Bytes
