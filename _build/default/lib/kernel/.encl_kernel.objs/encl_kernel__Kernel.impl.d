lib/kernel/kernel.ml: Bpf Bytes Clock Costs Cpu Encl_util Fun Hashtbl List Mm Mpk Net Option Phys Pte Seccomp Sysno Vfs
