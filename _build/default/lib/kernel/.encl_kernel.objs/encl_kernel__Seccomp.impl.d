lib/kernel/seccomp.ml: Array Bpf Hashtbl Int32 List Mpk Printf Sysno
