lib/kernel/bpf.mli: Format
