lib/kernel/bpf.ml: Array Format Int32 List Option
