lib/kernel/vfs.ml: Bytes Hashtbl List Result String
