lib/kernel/mm.mli: Pagetable Phys Pte
