lib/kernel/sysno.mli:
