lib/kernel/mm.ml: Encl_util Hashtbl List Pagetable Phys Printf Pte
