lib/kernel/kernel.mli: Bpf Clock Costs Cpu Mm Mpk Net Sysno Vfs
