lib/kernel/net.ml: Buffer Bytes Hashtbl List Printf Queue String
