type node_kind = Regular | Directory

type file = { mutable data : Bytes.t; mutable fmode : int }
and dir = { entries : (string, node) Hashtbl.t; mutable dmode : int }
and node = File of file | Dir of dir

type t = { root : node }

type stat = { kind : node_kind; size : int; mode : int }

type errno = Enoent | Eexist | Enotdir | Eisdir | Einval | Eacces

let errno_name = function
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Einval -> "EINVAL"
  | Eacces -> "EACCES"

let create () = { root = Dir { entries = Hashtbl.create 16; dmode = 0o755 } }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

(* Walk to the node at [components]. *)
let rec lookup node components =
  match (node, components) with
  | _, [] -> Ok node
  | Dir d, c :: rest -> (
      match Hashtbl.find_opt d.entries c with
      | None -> Error Enoent
      | Some child -> lookup child rest)
  | File _, _ :: _ -> Error Enotdir

let lookup_path t path =
  if String.length path = 0 || path.[0] <> '/' then Error Einval
  else lookup t.root (split_path path)

(* Walk to the parent directory of [path]; returns (dir record, basename). *)
let lookup_parent t path =
  if String.length path = 0 || path.[0] <> '/' then Error Einval
  else
    match List.rev (split_path path) with
    | [] -> Error Einval
    | base :: rev_dir -> (
        match lookup t.root (List.rev rev_dir) with
        | Ok (Dir d) -> Ok (d, base)
        | Ok (File _) -> Error Enotdir
        | Error e -> Error e)

let mkdir t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (parent, base) ->
      if Hashtbl.mem parent.entries base then Error Eexist
      else begin
        Hashtbl.replace parent.entries base
          (Dir { entries = Hashtbl.create 8; dmode = 0o755 });
        Ok ()
      end

let mkdir_p t path =
  let rec build prefix = function
    | [] -> Ok ()
    | c :: rest -> (
        let here = prefix ^ "/" ^ c in
        match mkdir t here with
        | Ok () | Error Eexist -> build here rest
        | Error e -> Error e)
  in
  if String.length path = 0 || path.[0] <> '/' then Error Einval
  else build "" (split_path path)

let create_file t path ?(mode = 0o644) data =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (parent, base) -> (
      match Hashtbl.find_opt parent.entries base with
      | Some (Dir _) -> Error Eisdir
      | Some (File f) ->
          f.data <- Bytes.copy data;
          f.fmode <- mode;
          Ok ()
      | None ->
          Hashtbl.replace parent.entries base (File { data = Bytes.copy data; fmode = mode });
          Ok ())

let read_file t path =
  match lookup_path t path with
  | Ok (File f) -> Ok (Bytes.copy f.data)
  | Ok (Dir _) -> Error Eisdir
  | Error e -> Error e

let read_at t path ~off ~len =
  if off < 0 || len < 0 then Error Einval
  else
    match lookup_path t path with
    | Ok (File f) ->
        let size = Bytes.length f.data in
        if off >= size then Ok Bytes.empty
        else Ok (Bytes.sub f.data off (min len (size - off)))
    | Ok (Dir _) -> Error Eisdir
    | Error e -> Error e

let write_at t path ~off data =
  if off < 0 then Error Einval
  else
    match lookup_path t path with
    | Ok (File f) ->
        let len = Bytes.length data in
        let needed = off + len in
        if needed > Bytes.length f.data then begin
          let grown = Bytes.make needed '\000' in
          Bytes.blit f.data 0 grown 0 (Bytes.length f.data);
          f.data <- grown
        end;
        Bytes.blit data 0 f.data off len;
        Ok len
    | Ok (Dir _) -> Error Eisdir
    | Error e -> Error e

let append t path data =
  match lookup_path t path with
  | Ok (File f) -> write_at t path ~off:(Bytes.length f.data) data
  | Ok (Dir _) -> Error Eisdir
  | Error e -> Error e

let stat t path =
  match lookup_path t path with
  | Ok (File f) -> Ok { kind = Regular; size = Bytes.length f.data; mode = f.fmode }
  | Ok (Dir d) -> Ok { kind = Directory; size = Hashtbl.length d.entries; mode = d.dmode }
  | Error e -> Error e

let exists t path = Result.is_ok (lookup_path t path)

let unlink t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (parent, base) -> (
      match Hashtbl.find_opt parent.entries base with
      | None -> Error Enoent
      | Some (Dir _) -> Error Eisdir
      | Some (File _) ->
          Hashtbl.remove parent.entries base;
          Ok ())

let rmdir t path =
  match lookup_parent t path with
  | Error e -> Error e
  | Ok (parent, base) -> (
      match Hashtbl.find_opt parent.entries base with
      | None -> Error Enoent
      | Some (File _) -> Error Enotdir
      | Some (Dir d) ->
          if Hashtbl.length d.entries > 0 then Error Einval
          else begin
            Hashtbl.remove parent.entries base;
            Ok ()
          end)

let readdir t path =
  match lookup_path t path with
  | Ok (Dir d) ->
      Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d.entries [] |> List.sort compare)
  | Ok (File _) -> Error Enotdir
  | Error e -> Error e

let chmod t path mode =
  match lookup_path t path with
  | Ok (File f) ->
      f.fmode <- mode;
      Ok ()
  | Ok (Dir d) ->
      d.dmode <- mode;
      Ok ()
  | Error e -> Error e
