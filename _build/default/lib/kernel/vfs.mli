(** An in-memory filesystem for the simulated kernel.

    Absolute slash-separated paths, regular files and directories, a small
    permission model (a file can be marked secret to make attack tests
    observable). File descriptors are managed by {!Kernel}, not here: this
    module exposes inode-level operations. *)

type t

type node_kind = Regular | Directory

type stat = { kind : node_kind; size : int; mode : int }

type errno = Enoent | Eexist | Enotdir | Eisdir | Einval | Eacces

val errno_name : errno -> string

val create : unit -> t
(** A filesystem containing only the root directory. *)

val mkdir : t -> string -> (unit, errno) result
val mkdir_p : t -> string -> (unit, errno) result

val create_file : t -> string -> ?mode:int -> Bytes.t -> (unit, errno) result
(** Create or truncate-and-replace a regular file with contents. *)

val read_file : t -> string -> (Bytes.t, errno) result
(** Whole contents of a regular file. *)

val read_at : t -> string -> off:int -> len:int -> (Bytes.t, errno) result
(** Up to [len] bytes at [off]; short result at end of file. *)

val write_at : t -> string -> off:int -> Bytes.t -> (int, errno) result
(** Write, extending the file if needed; returns bytes written. *)

val append : t -> string -> Bytes.t -> (int, errno) result

val stat : t -> string -> (stat, errno) result
val exists : t -> string -> bool
val unlink : t -> string -> (unit, errno) result
val rmdir : t -> string -> (unit, errno) result
(** Directory must be empty. *)

val readdir : t -> string -> (string list, errno) result
(** Sorted entry names. *)

val chmod : t -> string -> int -> (unit, errno) result

val split_path : string -> string list
(** Path components of an absolute path; exposed for tests. *)
