(** Address-space management for the simulated process.

    One {!t} describes the single virtual address space of the application.
    Several page tables can view that address space: LB_MPK uses exactly
    one; LB_VTX registers the trusted page table plus one clone per
    enclosure. Mapping operations apply to {e all} registered page tables
    (same frames); permission, protection-key, and present-bit changes can
    be applied globally or to one table. *)

type t

val create : phys:Phys.t -> base:int -> t
(** [base] is the first virtual address handed out (page aligned). *)

val phys : t -> Phys.t
val add_pt : t -> Pagetable.t -> unit
val pts : t -> Pagetable.t list

val alloc_range : t -> len:int -> int
(** Reserve a page-aligned virtual range of at least [len] bytes; returns
    its start address. Does not map anything. *)

val map_at : t -> addr:int -> len:int -> perms:Pte.perms -> unit
(** Back the (page-aligned) range with fresh zeroed frames and install
    entries in every registered page table. *)

val map : t -> len:int -> perms:Pte.perms -> int
(** [alloc_range] + [map_at]; returns the address. *)

val unmap : t -> addr:int -> len:int -> unit
(** Remove the range from every page table and free the frames. *)

val protect : t -> ?pt:Pagetable.t -> addr:int -> len:int -> Pte.perms -> unit
(** Change permissions in one table, or all when [pt] is not given. *)

val set_pkey : t -> addr:int -> len:int -> int -> unit
(** Retag the range (all page tables — key tags live in the PTEs). *)

val set_present : t -> pt:Pagetable.t -> addr:int -> len:int -> bool -> unit

val page_span : addr:int -> len:int -> int * int
(** [(first_vpn, last_vpn)] covered by the byte range; exposed for tests. *)

val is_mapped : t -> addr:int -> bool
