type t = {
  phys : Phys.t;
  mutable pts : Pagetable.t list;
  mutable next : int;
  frames : (int, int) Hashtbl.t;  (** vpn -> ppn, canonical ownership *)
}

let create ~phys ~base =
  if not (Encl_util.Bitops.is_aligned base Phys.page_size) then
    invalid_arg "Mm.create: base not page aligned";
  { phys; pts = []; next = base; frames = Hashtbl.create 1024 }

let phys t = t.phys
let add_pt t pt = t.pts <- t.pts @ [ pt ]
let pts t = t.pts

let alloc_range t ~len =
  let len = max len Phys.page_size in
  let addr = t.next in
  t.next <- addr + Encl_util.Bitops.align_up len Phys.page_size;
  addr

let page_span ~addr ~len =
  let first = addr / Phys.page_size in
  let last = (addr + max len 1 - 1) / Phys.page_size in
  (first, last)

let check_aligned name addr =
  if not (Encl_util.Bitops.is_aligned addr Phys.page_size) then
    invalid_arg (name ^ ": address not page aligned")

let map_at t ~addr ~len ~perms =
  check_aligned "Mm.map_at" addr;
  let first, last = page_span ~addr ~len in
  for vpn = first to last do
    if Hashtbl.mem t.frames vpn then
      invalid_arg (Printf.sprintf "Mm.map_at: vpn %d already mapped" vpn);
    let ppn = Phys.alloc_page t.phys in
    Hashtbl.replace t.frames vpn ppn;
    List.iter (fun pt -> Pagetable.map pt ~vpn (Pte.make ~ppn ~perms)) t.pts
  done

let map t ~len ~perms =
  let addr = alloc_range t ~len in
  map_at t ~addr ~len ~perms;
  addr

let unmap t ~addr ~len =
  check_aligned "Mm.unmap" addr;
  let first, last = page_span ~addr ~len in
  for vpn = first to last do
    match Hashtbl.find_opt t.frames vpn with
    | None -> invalid_arg (Printf.sprintf "Mm.unmap: vpn %d not mapped" vpn)
    | Some ppn ->
        List.iter (fun pt -> Pagetable.unmap pt ~vpn) t.pts;
        Hashtbl.remove t.frames vpn;
        Phys.free_page t.phys ppn
  done

let iter_range f ~addr ~len =
  let first, last = page_span ~addr ~len in
  for vpn = first to last do
    f vpn
  done

let protect t ?pt ~addr ~len perms =
  let tables = match pt with Some pt -> [ pt ] | None -> t.pts in
  iter_range ~addr ~len (fun vpn ->
      List.iter (fun table -> Pagetable.protect table ~vpn perms) tables)

let set_pkey t ~addr ~len key =
  iter_range ~addr ~len (fun vpn ->
      List.iter (fun table -> Pagetable.set_pkey table ~vpn key) t.pts)

let set_present (_ : t) ~pt ~addr ~len present =
  iter_range ~addr ~len (fun vpn -> Pagetable.set_present pt ~vpn present)

let is_mapped t ~addr = Hashtbl.mem t.frames (addr / Phys.page_size)
