(** A classic-BPF-style filter machine for seccomp.

    LB_MPK translates an enclosure's [FilterSyscall] policy "into a BPF
    filter loaded via seccomp, which indexes the current environment (from
    the PKRU value) to a mask of permitted system calls" (paper §5.3). This
    module is the machine: an accumulator [A], an index register [X],
    conditional forward jumps, and [Ret] actions.

    The seccomp data exposed to programs includes the PKRU register value,
    mirroring the kernel patch the paper applies. *)

type field =
  | F_nr  (** system-call number *)
  | F_arch
  | F_arg of int  (** argument 0..5, truncated to 32 bits *)
  | F_pkru  (** PKRU value of the calling context (kernel patch [45]) *)

type action = Allow | Kill | Errno of int | Trap

type insn =
  | Ld of field  (** A <- data\[field\] *)
  | Ld_imm of int  (** A <- k *)
  | Ldx_imm of int  (** X <- k *)
  | Tax  (** X <- A *)
  | Txa  (** A <- X *)
  | Alu_and of int
  | Alu_or of int
  | Alu_rsh of int
  | Jmp of int  (** unconditional forward jump of k instructions *)
  | Jeq of int * int * int  (** if A = k then skip jt else skip jf *)
  | Jgt of int * int * int
  | Jset of int * int * int  (** if A land k <> 0 *)
  | Jeq_x of int * int  (** if A = X *)
  | Ret of action
  | Ret_a  (** return the action encoded in A (0 = Kill, 1 = Allow) *)

type program = insn array

type data = { nr : int; arch : int; args : int array; pkru : int32 }

val make_data : nr:int -> ?args:int array -> pkru:int32 -> unit -> data

exception Bad_program of string
(** Raised by {!validate} and by {!run} on malformed programs (backward
    jumps, jumps out of range, missing return, step-limit exceeded). *)

val validate : program -> unit
(** Kernel-side verification: all jumps strictly forward and in range, the
    last reachable path ends in a return, program non-empty and below the
    4096-instruction limit. *)

val run : program -> data -> action
(** Execute the filter on a syscall datum. *)

val run_count : program -> data -> action * int
(** Like {!run} but also returns the number of instructions executed
    (the kernel charges a fast-path cost when a filter decides within a
    few instructions — e.g. the trusted-PKRU branch). *)

val pp_action : Format.formatter -> action -> unit
val pp_program : Format.formatter -> program -> unit
