type field = F_nr | F_arch | F_arg of int | F_pkru

type action = Allow | Kill | Errno of int | Trap

type insn =
  | Ld of field
  | Ld_imm of int
  | Ldx_imm of int
  | Tax
  | Txa
  | Alu_and of int
  | Alu_or of int
  | Alu_rsh of int
  | Jmp of int
  | Jeq of int * int * int
  | Jgt of int * int * int
  | Jset of int * int * int
  | Jeq_x of int * int
  | Ret of action
  | Ret_a

type program = insn array

type data = { nr : int; arch : int; args : int array; pkru : int32 }

let make_data ~nr ?(args = [||]) ~pkru () =
  let full = Array.make 6 0 in
  Array.blit args 0 full 0 (min 6 (Array.length args));
  { nr; arch = 0xc000003e (* AUDIT_ARCH_X86_64 *); args = full; pkru }

exception Bad_program of string

let max_insns = 4096

let jump_targets index = function
  | Jmp k -> [ index + 1 + k ]
  | Jeq (_, jt, jf) | Jgt (_, jt, jf) | Jset (_, jt, jf) ->
      [ index + 1 + jt; index + 1 + jf ]
  | Jeq_x (jt, jf) -> [ index + 1 + jt; index + 1 + jf ]
  | Ret _ | Ret_a -> []
  | Ld _ | Ld_imm _ | Ldx_imm _ | Tax | Txa | Alu_and _ | Alu_or _ | Alu_rsh _
    ->
      [ index + 1 ]

let validate prog =
  let n = Array.length prog in
  if n = 0 then raise (Bad_program "empty program");
  if n > max_insns then raise (Bad_program "program too long");
  Array.iteri
    (fun i insn ->
      let targets = jump_targets i insn in
      List.iter
        (fun tgt ->
          if tgt <= i then raise (Bad_program "backward jump");
          if tgt > n then raise (Bad_program "jump out of range");
          (* [tgt = n] means falling off the end, caught below. *)
          if tgt = n then
            raise (Bad_program "control flow reaches past the last instruction"))
        targets;
      match insn with
      | Ld (F_arg i) when i < 0 || i > 5 -> raise (Bad_program "bad argument index")
      | _ -> ())
    prog;
  match prog.(n - 1) with
  | Ret _ | Ret_a | Jmp _ | Jeq _ | Jgt _ | Jset _ | Jeq_x _ -> ()
  | _ -> raise (Bad_program "last instruction must end control flow")

let field_value data = function
  | F_nr -> data.nr
  | F_arch -> data.arch
  | F_arg i -> data.args.(i) land 0xffffffff
  | F_pkru -> Int32.to_int (Int32.logand data.pkru 0xffffffffl) land 0xffffffff

let run_counted prog data =
  let n = Array.length prog in
  let a = ref 0 and x = ref 0 in
  let pc = ref 0 in
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    incr steps;
    if !steps > max_insns then raise (Bad_program "step limit exceeded");
    if !pc < 0 || !pc >= n then raise (Bad_program "fell off the program");
    (match prog.(!pc) with
    | Ld f ->
        a := field_value data f;
        incr pc
    | Ld_imm k ->
        a := k;
        incr pc
    | Ldx_imm k ->
        x := k;
        incr pc
    | Tax ->
        x := !a;
        incr pc
    | Txa ->
        a := !x;
        incr pc
    | Alu_and k ->
        a := !a land k;
        incr pc
    | Alu_or k ->
        a := !a lor k;
        incr pc
    | Alu_rsh k ->
        a := !a lsr k;
        incr pc
    | Jmp k -> pc := !pc + 1 + k
    | Jeq (k, jt, jf) -> pc := !pc + 1 + (if !a = k then jt else jf)
    | Jgt (k, jt, jf) -> pc := !pc + 1 + (if !a > k then jt else jf)
    | Jset (k, jt, jf) -> pc := !pc + 1 + (if !a land k <> 0 then jt else jf)
    | Jeq_x (jt, jf) -> pc := !pc + 1 + (if !a = !x then jt else jf)
    | Ret act -> result := Some act
    | Ret_a -> result := Some (if !a = 0 then Kill else Allow));
  done;
  (Option.get !result, !steps)

let run_count = run_counted

let run prog data = fst (run_counted prog data)

let pp_action ppf = function
  | Allow -> Format.pp_print_string ppf "ALLOW"
  | Kill -> Format.pp_print_string ppf "KILL"
  | Errno e -> Format.fprintf ppf "ERRNO(%d)" e
  | Trap -> Format.pp_print_string ppf "TRAP"

let pp_insn ppf = function
  | Ld F_nr -> Format.pp_print_string ppf "ld nr"
  | Ld F_arch -> Format.pp_print_string ppf "ld arch"
  | Ld (F_arg i) -> Format.fprintf ppf "ld arg%d" i
  | Ld F_pkru -> Format.pp_print_string ppf "ld pkru"
  | Ld_imm k -> Format.fprintf ppf "ld #%d" k
  | Ldx_imm k -> Format.fprintf ppf "ldx #%d" k
  | Tax -> Format.pp_print_string ppf "tax"
  | Txa -> Format.pp_print_string ppf "txa"
  | Alu_and k -> Format.fprintf ppf "and #%#x" k
  | Alu_or k -> Format.fprintf ppf "or #%#x" k
  | Alu_rsh k -> Format.fprintf ppf "rsh #%d" k
  | Jmp k -> Format.fprintf ppf "jmp +%d" k
  | Jeq (k, jt, jf) -> Format.fprintf ppf "jeq #%d, +%d, +%d" k jt jf
  | Jgt (k, jt, jf) -> Format.fprintf ppf "jgt #%d, +%d, +%d" k jt jf
  | Jset (k, jt, jf) -> Format.fprintf ppf "jset #%#x, +%d, +%d" k jt jf
  | Jeq_x (jt, jf) -> Format.fprintf ppf "jeqx +%d, +%d" jt jf
  | Ret a -> Format.fprintf ppf "ret %a" pp_action a
  | Ret_a -> Format.pp_print_string ppf "ret A"

let pp_program ppf prog =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i insn -> Format.fprintf ppf "%3d: %a@ " i pp_insn insn) prog;
  Format.fprintf ppf "@]"
