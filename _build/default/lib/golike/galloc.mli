(** The Go-like dynamic memory allocator ([mallocgc]).

    The heap is divided into fixed-size spans. Spans are carved out of
    larger chunks obtained from the OS with [mmap] and are dynamically
    assigned to package arenas; each assignment (and each reuse of a freed
    span by another package) calls LitterBox's [Transfer] hook so every
    execution environment sees the new ownership (paper §5.1).

    When LitterBox is active, the chunk-refill [mmap] runs as a controlled
    excursion to the trusted environment (the runtime, not the enclosed
    code, owns the address space). *)

val span_pages : int
(** 4 pages (16 KiB) per span. *)

val span_bytes : int
val chunk_bytes : int
(** 160 KiB per OS chunk (10 spans). *)

type t

val create :
  machine:Encl_litterbox.Machine.t ->
  lb:Encl_litterbox.Litterbox.t option ->
  unit ->
  t
(** [lb = None] is the unmodified-Go baseline: no transfers, plain
    syscalls. *)

val alloc : t -> pkg:string -> int -> int
(** [alloc t ~pkg size] returns the address of [size] fresh bytes in
    [pkg]'s arena. Small objects share the package's current span; large
    objects get dedicated spans. *)

val release_arena : t -> pkg:string -> unit
(** Return all of a package's spans to the central free list; subsequent
    allocations (by any package) may reuse them, triggering transfers
    across packages. *)

val spans_of : t -> pkg:string -> int
(** Number of spans currently assigned to the package's arena. *)

val alloc_count : t -> int
val transfer_count : t -> int
(** Transfers issued by this allocator (0 for the baseline). *)

val os_chunks : t -> int
(** Number of mmap chunk refills so far. *)
