(** Go-like synchronization primitives over the cooperative scheduler.

    Even though the simulation is single-threaded, goroutines interleave
    at every blocking point, so programs still need mutual exclusion
    around multi-step critical sections and completion barriers. *)

module Mutex : sig
  type t

  val create : Sched.t -> t
  val lock : t -> unit
  (** Blocks the goroutine while another holds the lock. *)

  val unlock : t -> unit
  (** Raises [Invalid_argument] if the mutex is not held. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  val is_locked : t -> bool
end

module Waitgroup : sig
  type t

  val create : Sched.t -> t
  val add : t -> int -> unit
  val finish : t -> unit
  (** Go's [wg.Done()]. Raises [Invalid_argument] below zero. *)

  val wait : t -> unit
  (** Blocks until the counter reaches zero. *)

  val count : t -> int
end

module Once : sig
  type t

  val create : unit -> t
  val run : t -> (unit -> unit) -> unit
  (** Runs the function the first time only. *)

  val done_ : t -> bool
end
