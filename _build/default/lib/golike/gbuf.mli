(** Guest-memory buffers: the values Go-like programs manipulate.

    Every access goes through the simulated CPU, so it is checked against
    the current execution environment — reading a buffer owned by a
    package outside the enclosure's view faults, exactly like the paper's
    hardware enforcement. *)

type t = { addr : int; len : int }

val sub : t -> pos:int -> len:int -> t

val get : Encl_litterbox.Machine.t -> t -> int -> int
(** Byte at index. *)

val set : Encl_litterbox.Machine.t -> t -> int -> int -> unit
val fill : Encl_litterbox.Machine.t -> t -> int -> unit

val read_string : Encl_litterbox.Machine.t -> t -> string
val write_string : Encl_litterbox.Machine.t -> t -> string -> unit
(** Writes at offset 0; the string must fit. *)

val read_bytes : Encl_litterbox.Machine.t -> t -> Bytes.t
val write_bytes : Encl_litterbox.Machine.t -> t -> Bytes.t -> unit

val blit :
  Encl_litterbox.Machine.t -> src:t -> dst:t -> unit
(** Copies [min src.len dst.len] bytes. *)

val get64 : Encl_litterbox.Machine.t -> t -> int -> int64
val set64 : Encl_litterbox.Machine.t -> t -> int -> int64 -> unit
