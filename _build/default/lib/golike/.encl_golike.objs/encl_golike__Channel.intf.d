lib/golike/channel.mli: Sched
