lib/golike/sync.mli: Sched
