lib/golike/galloc.mli: Encl_litterbox
