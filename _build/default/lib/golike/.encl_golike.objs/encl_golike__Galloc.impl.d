lib/golike/galloc.ml: Clock Encl_kernel Encl_litterbox Hashtbl List Phys
