lib/golike/gbuf.mli: Bytes Encl_litterbox
