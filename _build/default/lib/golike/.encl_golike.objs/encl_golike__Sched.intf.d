lib/golike/sched.mli: Encl_litterbox
