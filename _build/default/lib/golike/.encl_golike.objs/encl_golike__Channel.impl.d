lib/golike/channel.ml: Clock Encl_litterbox List Option Queue Sched
