lib/golike/sync.ml: Fun Sched
