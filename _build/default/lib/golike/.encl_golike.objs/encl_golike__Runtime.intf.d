lib/golike/runtime.mli: Bytes Clock Costs Encl_elf Encl_kernel Encl_litterbox Galloc Gbuf Sched
