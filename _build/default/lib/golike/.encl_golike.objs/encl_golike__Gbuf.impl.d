lib/golike/gbuf.ml: Bytes Char Cpu Encl_litterbox
