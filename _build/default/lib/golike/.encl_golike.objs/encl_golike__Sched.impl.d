lib/golike/sched.ml: Effect Encl_litterbox Encl_util List Queue
