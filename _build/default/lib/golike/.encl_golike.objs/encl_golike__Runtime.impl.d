lib/golike/runtime.ml: Clock Costs Cpu Encl_elf Encl_enclosure Encl_kernel Encl_litterbox Encl_pkg Fun Galloc Gbuf List Printf Sched
