module Lb = Encl_litterbox.Litterbox
module Machine = Encl_litterbox.Machine

type _ Effect.t += Yield : unit Effect.t | Wait : (unit -> bool) -> unit Effect.t

type step_result =
  | Done
  | Yielded of (unit, step_result) Effect.Deep.continuation
  | Waiting of (unit -> bool) * (unit, step_result) Effect.Deep.continuation

type state =
  | Start of (unit -> unit)
  | Cont of (unit, step_result) Effect.Deep.continuation

type fiber = {
  fid : int;
  mutable env : Lb.env_ref option;  (** [None] in baseline mode *)
  mutable state : state option;
  mutable pred : (unit -> bool) option;
}

type t = {
  machine : Machine.t;
  lb : Lb.t option;
  runq : fiber Queue.t;
  mutable blocked : fiber list;
  mutable current : fiber option;
  ids : Encl_util.Ids.t;
  mutable exec_switches : int;
}

let create ~machine ~lb () =
  {
    machine;
    lb;
    runq = Queue.create ();
    blocked = [];
    current = None;
    ids = Encl_util.Ids.make ();
    exec_switches = 0;
  }

let in_fiber t = t.current <> None

let capture_current_env t =
  match t.lb with None -> None | Some lb -> Some (Lb.capture_env lb)

let go t f =
  let fiber =
    {
      fid = Encl_util.Ids.next t.ids;
      env = capture_current_env t;
      state = Some (Start f);
      pred = None;
    }
  in
  Queue.push fiber t.runq

let yield t = if in_fiber t then Effect.perform Yield

let wait_until t pred =
  if not (in_fiber t) then invalid_arg "Sched.wait_until: not inside a goroutine";
  if not (pred ()) then Effect.perform (Wait pred)

(* Restore a fiber's environment via the Execute hook, skipping redundant
   switches. *)
let switch_env t fiber =
  match (t.lb, fiber.env) with
  | None, _ -> ()
  | Some lb, env ->
      let target = match env with Some e -> e | None -> Lb.trusted_env_ref lb in
      if not (Lb.env_matches lb target) then begin
        t.exec_switches <- t.exec_switches + 1;
        Lb.execute lb target ~site:"runtime.scheduler"
      end

let save_env t fiber =
  match t.lb with
  | None -> ()
  | Some lb -> fiber.env <- Some (Lb.capture_env lb)

let run_step (_ : t) fiber =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> Done);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some (fun (k : (a, step_result) continuation) -> Yielded k)
          | Wait p ->
              Some (fun (k : (a, step_result) continuation) -> Waiting (p, k))
          | _ -> None);
    }
  in
  match fiber.state with
  | None -> Done
  | Some (Start f) ->
      fiber.state <- None;
      match_with f () handler
  | Some (Cont k) ->
      fiber.state <- None;
      continue k ()

let promote_unblocked t =
  let still_blocked =
    List.filter
      (fun fiber ->
        match fiber.pred with
        | Some p when p () ->
            fiber.pred <- None;
            Queue.push fiber t.runq;
            false
        | Some _ -> true
        | None ->
            Queue.push fiber t.runq;
            false)
      t.blocked
  in
  t.blocked <- still_blocked

let rec schedule t =
  if Queue.is_empty t.runq then begin
    promote_unblocked t;
    if not (Queue.is_empty t.runq) then schedule t
  end
  else begin
    let fiber = Queue.pop t.runq in
    switch_env t fiber;
    let saved = t.current in
    t.current <- Some fiber;
    let result = run_step t fiber in
    t.current <- saved;
    (match result with
    | Done -> ()
    | Yielded k ->
        save_env t fiber;
        fiber.state <- Some (Cont k);
        Queue.push fiber t.runq
    | Waiting (p, k) ->
        save_env t fiber;
        fiber.state <- Some (Cont k);
        fiber.pred <- Some p;
        t.blocked <- t.blocked @ [ fiber ]);
    schedule t
  end

let main t f =
  go t f;
  schedule t

let kick t = schedule t
let blocked_count t = List.length t.blocked
let machine t = t.machine
let switch_count t = t.exec_switches
