(** The Go-like user-level scheduler (goroutines).

    Goroutines are cooperative fibers built on OCaml effects. Each fiber
    carries the execution environment captured when it was spawned —
    "execution environments are transitively inherited by goroutine
    creation so that user-level threads created inside an enclosure's
    environment continue to execute in the same environment" (paper §5.1)
    — and the scheduler calls LitterBox's [Execute] hook whenever it
    resumes a fiber whose environment differs from the current one. *)

type t

val create :
  machine:Encl_litterbox.Machine.t ->
  lb:Encl_litterbox.Litterbox.t option ->
  unit ->
  t

val go : t -> (unit -> unit) -> unit
(** Spawn a goroutine inheriting the current execution environment. May
    be called from inside or outside a fiber. *)

val yield : t -> unit
(** Cooperatively yield the current fiber. No-op outside fibers. *)

val wait_until : t -> (unit -> bool) -> unit
(** Block the current fiber until the predicate holds. The predicate is
    re-evaluated every scheduling round. Must be called from a fiber. *)

val main : t -> (unit -> unit) -> unit
(** Run [f] as the initial goroutine and schedule until no fiber is
    runnable. Blocked fibers (e.g. servers waiting for connections)
    survive across calls: a later {!kick} resumes scheduling. *)

val kick : t -> unit
(** Re-enter the scheduler: promote fibers whose wait predicates have
    become true (e.g. after a test injected network traffic) and run
    until idle again. *)

val blocked_count : t -> int
val switch_count : t -> int
(** Environment switches performed via the Execute hook. *)

val in_fiber : t -> bool
val machine : t -> Encl_litterbox.Machine.t
