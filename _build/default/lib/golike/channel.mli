(** Go-like channels: typed, bounded, blocking queues.

    The paper's FastHTTP and wiki applications use channels as the
    communication boundary between enclosed servers and trusted handler
    goroutines ("the enclosure forwards requests to a trusted handler
    goroutine via go channels", §6.2). Channel payloads are OCaml values:
    the channel is runtime machinery, not guest memory — sharing guest
    pointers across a channel is exactly the explicit-sharing decision the
    developer makes. *)

type 'a t

val create : Sched.t -> cap:int -> 'a t
(** [cap >= 1]. *)

val send : 'a t -> 'a -> unit
(** Blocks the current goroutine while the channel is full. *)

val recv : 'a t -> 'a
(** Blocks while empty. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int

(** {2 Select}

    Go's [select] statement: wait on several channels at once. *)

type 'r case

val case : 'a t -> ('a -> 'r) -> 'r case
(** A receive arm: when the channel has a value, consume it and apply
    the continuation. *)

val select : Sched.t -> ?default:(unit -> 'r) -> 'r case list -> 'r
(** Take from the first ready arm (in list order). With [default], never
    blocks; without it, blocks the goroutine until an arm is ready. *)
