module Sset = Set.Make (String)

type t = { imports : (string, Sset.t) Hashtbl.t }

let create () = { imports = Hashtbl.create 64 }

let add_package t name =
  if not (Hashtbl.mem t.imports name) then Hashtbl.replace t.imports name Sset.empty

let add_import t ~importer ~imported =
  if importer = imported then
    invalid_arg (Printf.sprintf "Graph: package %s cannot import itself" importer);
  add_package t importer;
  add_package t imported;
  let deps = Hashtbl.find t.imports importer in
  Hashtbl.replace t.imports importer (Sset.add imported deps)

let packages t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.imports [] |> List.sort compare

let mem t name = Hashtbl.mem t.imports name

let direct_set t name =
  Option.value ~default:Sset.empty (Hashtbl.find_opt t.imports name)

let direct_deps t name = Sset.elements (direct_set t name)

let natural_set t name =
  let rec visit seen name =
    Sset.fold
      (fun dep seen ->
        if Sset.mem dep seen then seen else visit (Sset.add dep seen) dep)
      (direct_set t name) seen
  in
  visit Sset.empty name

let natural_deps t name = Sset.elements (natural_set t name)

let is_foreign t ~of_ name = name <> of_ && not (Sset.mem name (natural_set t of_))

(* Three-colour DFS for cycle detection and topological order. *)
let dfs t =
  let color = Hashtbl.create 64 in
  let order = ref [] in
  let cycle = ref None in
  let rec visit path name =
    match Hashtbl.find_opt color name with
    | Some `Black -> ()
    | Some `Grey ->
        if !cycle = None then begin
          let rec take acc = function
            | [] -> acc
            | n :: _ when n = name -> n :: acc
            | n :: rest -> take (n :: acc) rest
          in
          cycle := Some (take [] path)
        end
    | None | Some `White ->
        Hashtbl.replace color name `Grey;
        Sset.iter (visit (name :: path)) (direct_set t name);
        Hashtbl.replace color name `Black;
        order := name :: !order
  in
  List.iter (visit []) (packages t);
  (!cycle, List.rev !order)

let has_cycle t = fst (dfs t)

let topological_order t =
  match dfs t with
  | Some cycle, _ -> Error cycle
  | None, order -> Ok order

let reverse_deps t name =
  Hashtbl.fold
    (fun importer deps acc -> if Sset.mem name deps then importer :: acc else acc)
    t.imports []
  |> List.sort compare

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph packages {\n";
  List.iter
    (fun name ->
      Buffer.add_string buf (Printf.sprintf "  %S;\n" name);
      Sset.iter
        (fun dep -> Buffer.add_string buf (Printf.sprintf "  %S -> %S;\n" name dep))
        (direct_set t name))
    (packages t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
