(** The program's package-dependence graph (paper §2.1).

    Nodes are package names; an edge [Foo -> Bar] means [Foo] imports
    [Bar]. The graph is statically determinable from import statements. A
    package's {e natural dependencies} are its direct and transitive
    dependencies; a package is {e foreign} to another when it is not among
    its natural dependencies. *)

type t

val create : unit -> t

val add_package : t -> string -> unit
(** Idempotent. *)

val add_import : t -> importer:string -> imported:string -> unit
(** Adds both nodes if needed. Self-imports are rejected with
    [Invalid_argument]. *)

val packages : t -> string list
(** Sorted. *)

val mem : t -> string -> bool

val direct_deps : t -> string -> string list
(** Sorted direct dependencies; [] for unknown packages. *)

val natural_deps : t -> string -> string list
(** Sorted direct + transitive dependencies, excluding the package itself
    (the closure's own package is added separately by view computation). *)

val is_foreign : t -> of_:string -> string -> bool
(** [is_foreign t ~of_:foo bar]: [bar] is neither [foo] itself nor among
    [foo]'s natural dependencies. *)

val has_cycle : t -> string list option
(** [Some cycle] when an import cycle exists (the paper's languages — Go,
    Python module graphs — forbid or discourage them; the linker refuses
    them). *)

val topological_order : t -> (string list, string list) result
(** Dependencies first; [Error cycle] when cyclic. *)

val reverse_deps : t -> string -> string list
(** Packages that (directly) import the given one. *)

val to_dot : t -> string
(** Graphviz rendering of the dependence graph (Figure 1's top-right
    corner). *)
