lib/pkg/graph.ml: Buffer Hashtbl List Option Printf Set String
