lib/pkg/graph.mli:
