module Lb = Encl_litterbox.Litterbox
module Policy = Encl_litterbox.Policy

type 'r t = { lb : Lb.t; enc_name : string; site : string; body : unit -> 'r }

let declare lb ~name body =
  { lb; enc_name = name; site = "enclosure:" ^ name; body }

let declare_dynamic lb ~name ~owner ~deps ~policy body =
  match Policy.parse policy with
  | Error e -> Error e
  | Ok _ -> (
      match Lb.register_enclosure lb ~name ~owner ~deps ~policy ~closure_addr:0 with
      | Error e -> Error e
      | Ok () -> Ok (declare lb ~name body))

let call t =
  let m = Lb.machine t.lb in
  Clock.consume m.Encl_litterbox.Machine.clock Clock.Compute
    m.Encl_litterbox.Machine.costs.Costs.closure_call;
  Lb.prolog t.lb ~name:t.enc_name ~site:t.site;
  Fun.protect ~finally:(fun () -> Lb.epilog t.lb ~site:t.site) t.body

let name t = t.enc_name

let check_policy literal =
  match Policy.parse literal with Ok _ -> Ok () | Error e -> Error e
