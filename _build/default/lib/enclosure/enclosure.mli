(** The enclosure programming-language construct (paper §2).

    [with \[Policies\] func (args) resultType { body }] is modelled as
    {!declare}: it returns a closure permanently associated with a memory
    view and system-call filter; the restrictions are enforced on every
    execution of the closure and are dynamically scoped — they apply to
    everything the closure invokes, including nested enclosures (which may
    only restrict further). *)

type 'r t
(** A declared enclosure producing results of type ['r]. *)

val declare :
  Encl_litterbox.Litterbox.t ->
  name:string ->
  (unit -> 'r) ->
  'r t
(** Bind the closure to the (already linked/registered) enclosure [name].
    The closure may be called any number of times; each call pays the
    baseline closure-call cost plus the backend's switch costs. *)

val declare_dynamic :
  Encl_litterbox.Litterbox.t ->
  name:string ->
  owner:string ->
  deps:string list ->
  policy:string ->
  (unit -> 'r) ->
  ('r t, string) result
(** Dynamic-language path: validate the policy literal, register the
    enclosure with LitterBox ([Init] is called again, paper §5.2), and
    bind the closure. *)

val call : 'r t -> 'r
(** Execute the closure inside its restrictive environment. Raises
    {!Encl_litterbox.Litterbox.Fault} (or {!Cpu.Fault}) on a violation;
    the environment is restored before the exception propagates. *)

val name : 'r t -> string

val check_policy : string -> (unit, string) result
(** Compile-time validation of a policy literal (syntax and category
    names only; package existence is checked at link/Init time). *)
