lib/enclosure/enclosure.ml: Clock Costs Encl_litterbox Fun
