lib/enclosure/enclosure.mli: Encl_litterbox
