(** Sections: contiguous page-aligned virtual memory regions.

    "A section is a contiguous, page-aligned virtual memory region in the
    program's address space. Its start address, size, and default access
    rights characterize it." (paper §4.1) *)

type kind =
  | Text  (** functions; RX *)
  | Rodata  (** constants; R *)
  | Data  (** mutable globals; RW *)
  | Arena  (** package heap; RW, dynamically extended *)
  | Rstrct  (** enclosure configurations (linker-emitted) *)
  | Pkgs  (** package descriptions for LitterBox Init *)
  | Verif  (** allowed call-sites to the LitterBox API *)

val kind_name : kind -> string

val default_perms : kind -> Pte.perms
(** RX for text, R for rodata/rstrct/pkgs/verif, RW for data/arena. *)

type t = {
  name : string;  (** e.g. ["img.text"] or ["libFx.rcl.text"] *)
  owner : string;  (** owning package *)
  kind : kind;
  addr : int;  (** page-aligned start *)
  size : int;  (** bytes; the region occupies whole pages *)
}

val make : name:string -> owner:string -> kind:kind -> addr:int -> size:int -> t
(** Validates page alignment of [addr]. *)

val pages : t -> int
val end_addr : t -> int
(** First address past the section's page span. *)

val contains : t -> int -> bool
val overlaps : t -> t -> bool
val pp : Format.formatter -> t -> unit
