type kind = Text | Rodata | Data | Arena | Rstrct | Pkgs | Verif

let kind_name = function
  | Text -> "text"
  | Rodata -> "rodata"
  | Data -> "data"
  | Arena -> "arena"
  | Rstrct -> "rstrct"
  | Pkgs -> "pkgs"
  | Verif -> "verif"

let default_perms = function
  | Text -> { Pte.r = true; w = false; x = true }
  | Rodata | Rstrct | Pkgs | Verif -> { Pte.r = true; w = false; x = false }
  | Data | Arena -> { Pte.r = true; w = true; x = false }

type t = { name : string; owner : string; kind : kind; addr : int; size : int }

let make ~name ~owner ~kind ~addr ~size =
  if not (Encl_util.Bitops.is_aligned addr Phys.page_size) then
    invalid_arg (Printf.sprintf "Section %s: address %#x not page aligned" name addr);
  if size < 0 then invalid_arg "Section: negative size";
  { name; owner; kind; addr; size }

let pages t = (max t.size 1 + Phys.page_size - 1) / Phys.page_size
let end_addr t = t.addr + (pages t * Phys.page_size)
let contains t addr = addr >= t.addr && addr < end_addr t
let overlaps a b = a.addr < end_addr b && b.addr < end_addr a

let pp ppf t =
  Format.fprintf ppf "%-28s %-12s %s %#010x..%#010x (%d B)" t.name t.owner
    (kind_name t.kind) t.addr (end_addr t) t.size
