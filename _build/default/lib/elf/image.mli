(** The linked executable: placed sections, symbols, and the three
    LitterBox ELF sections (.pkgs, .rstrct, .verif) of paper §5.1 /
    Figure 4. *)

type placed_sym = {
  ps_name : string;
  ps_pkg : string;
  ps_addr : int;
  ps_size : int;
  ps_section : string;  (** name of the containing section *)
  ps_init : Bytes.t option;  (** initial contents copied at load time *)
}

type enclosure_desc = {
  ed_id : int;
  ed_owner : string;  (** declaring package *)
  ed_name : string;
  ed_policy : string;  (** opaque policy literal (frontend-validated) *)
  ed_closure : string;  (** closure function symbol *)
  ed_closure_addr : int;
  ed_direct_deps : string list;  (** owner's direct dependencies *)
}

type hook = Prolog | Epilog | Transfer | Execute

val hook_name : hook -> string

type verif_entry = { ve_site : string; ve_hook : hook }
(** An allowed call-site to the LitterBox API: symbolic site name (e.g.
    ["enclosure:rcl"] or ["runtime.mallocgc"]). *)

type t = {
  graph : Encl_pkg.Graph.t;
  sections : Section.t list;  (** ascending addresses *)
  symbols : placed_sym list;
  enclosures : enclosure_desc list;
  verif : verif_entry list;
  marked : string list;  (** packages appearing in at least one enclosure *)
  init_order : string list;  (** packages with init functions, deps first *)
  entry : string;  (** the main package *)
}

val find_symbol : t -> pkg:string -> string -> placed_sym option
val sections_of_pkg : t -> string -> Section.t list
val section_at : t -> int -> Section.t option
val enclosure_named : t -> string -> enclosure_desc option
val verif_allows : t -> site:string -> hook -> bool

val pp_layout : Format.formatter -> t -> unit
(** Figure-4-style rendering: ELF regions left to right with intra-section
    page-aligned symbol addresses and the LitterBox-generated sections. *)
