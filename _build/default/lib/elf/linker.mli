(** The linker: assembles per-package code objects into an executable.

    Responsibilities (paper §5.1):
    - build the program's package-dependence graph and refuse import
      cycles or missing imports;
    - assign page-aligned addresses so that no two packages share a page
      (the layout assumption LitterBox verifies at run time);
    - isolate each enclosure closure function into its own text section;
    - mark packages that appear in at least one enclosure;
    - emit the [.pkgs], [.rstrct], and [.verif] sections consumed by
      LitterBox's [Init]. *)

type error =
  | Duplicate_package of string
  | Missing_import of { importer : string; missing : string }
  | Import_cycle of string list
  | Unknown_entry of string
  | Duplicate_enclosure of string

val error_message : error -> string

val text_base : int
val rodata_base : int
val data_base : int
val meta_base : int
(** Region bases; the heap lives above all of them. *)

val heap_base : int

val link : objfiles:Objfile.t list -> entry:string -> (Image.t, error) result
(** [entry] is the main package's name. Two synthetic packages,
    ["litterbox.user"] and ["litterbox.super"], are always appended
    (LitterBox's own code and data, §5.3). *)
