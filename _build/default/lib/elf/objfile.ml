type sym = { sym_name : string; sym_size : int; sym_init : Bytes.t option }

let sym ?init name size =
  (match init with
  | Some b when Bytes.length b > size ->
      invalid_arg (Printf.sprintf "Objfile.sym %s: init larger than size" name)
  | Some _ | None -> ());
  if size < 0 then invalid_arg "Objfile.sym: negative size";
  { sym_name = name; sym_size = size; sym_init = init }

type enclosure_decl = {
  enc_name : string;
  enc_policy : string;
  enc_closure : string;
  enc_deps : string list;
}

type t = {
  pkg : string;
  imports : string list;
  functions : sym list;
  constants : sym list;
  globals : sym list;
  enclosures : enclosure_decl list;
  has_init : bool;
}

let make ~pkg ?(imports = []) ?(functions = []) ?(constants = []) ?(globals = [])
    ?(enclosures = []) ?(has_init = false) () =
  let names = List.concat_map (List.map (fun s -> s.sym_name)) [ functions; constants; globals ] in
  let sorted = List.sort compare names in
  let rec check_dup = function
    | a :: b :: _ when a = b ->
        invalid_arg (Printf.sprintf "Objfile %s: duplicate symbol %s" pkg a)
    | _ :: rest -> check_dup rest
    | [] -> ()
  in
  check_dup sorted;
  List.iter
    (fun e ->
      if not (List.exists (fun s -> s.sym_name = e.enc_closure) functions) then
        invalid_arg
          (Printf.sprintf "Objfile %s: enclosure %s closure %s is not a declared function"
             pkg e.enc_name e.enc_closure);
      List.iter
        (fun dep ->
          if not (List.mem dep imports || dep = pkg) then
            invalid_arg
              (Printf.sprintf
                 "Objfile %s: enclosure %s depends on %s, which the package does \
                  not import"
                 pkg e.enc_name dep))
        e.enc_deps)
    enclosures;
  { pkg; imports; functions; constants; globals; enclosures; has_init }

let find_function t name = List.find_opt (fun s -> s.sym_name = name) t.functions
