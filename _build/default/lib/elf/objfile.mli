(** Per-package code objects, as produced by a frontend compiler.

    "The compiler outputs one code object per package that contains the
    expected .text (functions), .data (global variables), and .rodata
    (constants) sections, as well as a .rstrct section containing the
    package's enclosures configurations and direct dependencies."
    (paper §5.1) *)

type sym = { sym_name : string; sym_size : int; sym_init : Bytes.t option }
(** A symbol to be placed by the linker. [sym_init], when present, is the
    initial contents copied into the image at load time (constants,
    initialised globals). *)

val sym : ?init:Bytes.t -> string -> int -> sym
(** [sym ?init name size]; when [init] is given its length must not exceed
    [size]. *)

type enclosure_decl = {
  enc_name : string;  (** e.g. ["rcl"] *)
  enc_policy : string;  (** the policy literal, parsed at compile time *)
  enc_closure : string;  (** name of the closure function it wraps *)
  enc_deps : string list;
      (** the closure's direct dependencies, as identified by the type
          checker (paper §5.1) — each must be one of the package's
          imports, or the package itself (a closure that calls local
          helpers) *)
}

type t = {
  pkg : string;
  imports : string list;  (** direct dependencies *)
  functions : sym list;
  constants : sym list;
  globals : sym list;
  enclosures : enclosure_decl list;
  has_init : bool;  (** package defines an [init] function *)
}

val make :
  pkg:string ->
  ?imports:string list ->
  ?functions:sym list ->
  ?constants:sym list ->
  ?globals:sym list ->
  ?enclosures:enclosure_decl list ->
  ?has_init:bool ->
  unit ->
  t
(** Validates that symbol names are unique within the object and that
    every enclosure closure names a declared function. *)

val find_function : t -> string -> sym option
