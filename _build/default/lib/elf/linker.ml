type error =
  | Duplicate_package of string
  | Missing_import of { importer : string; missing : string }
  | Import_cycle of string list
  | Unknown_entry of string
  | Duplicate_enclosure of string

let error_message = function
  | Duplicate_package p -> Printf.sprintf "duplicate package %s" p
  | Missing_import { importer; missing } ->
      Printf.sprintf "package %s imports unknown package %s" importer missing
  | Import_cycle cycle ->
      Printf.sprintf "import cycle: %s" (String.concat " -> " cycle)
  | Unknown_entry e -> Printf.sprintf "entry package %s not linked" e
  | Duplicate_enclosure e -> Printf.sprintf "duplicate enclosure name %s" e

let text_base = 0x0040_0000
let rodata_base = 0x0080_0000
let data_base = 0x00c0_0000
let meta_base = 0x0100_0000
let heap_base = 0x1000_0000

let user_pkg = "litterbox.user"
let super_pkg = "litterbox.super"

let sym_align = 16

(* Place a list of symbols contiguously from [base]; returns placed
   symbols and the total size. *)
let place_syms ~section ~pkg ~base syms =
  let cursor = ref base in
  let placed =
    List.map
      (fun (s : Objfile.sym) ->
        let addr = !cursor in
        cursor := Encl_util.Bitops.align_up (addr + max s.Objfile.sym_size sym_align) sym_align;
        {
          Image.ps_name = s.Objfile.sym_name;
          ps_pkg = pkg;
          ps_addr = addr;
          ps_size = s.Objfile.sym_size;
          ps_section = section;
          ps_init = s.Objfile.sym_init;
        })
      syms
  in
  (placed, !cursor - base)

(* Naive extraction of package names mentioned in a policy literal: tokens
   of the memory-modifier part shaped like "pkg:RIGHTS". Used only to mark
   packages; real parsing happens in the enclosure frontend. *)
let policy_packages literal =
  let mem_part =
    match String.index_opt literal ';' with
    | Some i -> String.sub literal 0 i
    | None -> literal
  in
  String.split_on_char ' ' mem_part
  |> List.filter_map (fun tok ->
         match String.index_opt tok ':' with
         | Some i when i > 0 -> Some (String.sub tok 0 i)
         | Some _ | None -> None)

let link ~objfiles ~entry =
  let seen = Hashtbl.create 32 in
  let dup =
    List.find_opt
      (fun (o : Objfile.t) ->
        if Hashtbl.mem seen o.Objfile.pkg then true
        else begin
          Hashtbl.replace seen o.Objfile.pkg ();
          false
        end)
      objfiles
  in
  match dup with
  | Some o -> Error (Duplicate_package o.Objfile.pkg)
  | None -> (
      (* Graph construction and validation. *)
      let graph = Encl_pkg.Graph.create () in
      List.iter (fun (o : Objfile.t) -> Encl_pkg.Graph.add_package graph o.Objfile.pkg) objfiles;
      let missing = ref None in
      List.iter
        (fun (o : Objfile.t) ->
          List.iter
            (fun dep ->
              if not (Hashtbl.mem seen dep) then (
                if !missing = None then
                  missing :=
                    Some (Missing_import { importer = o.Objfile.pkg; missing = dep }))
              else Encl_pkg.Graph.add_import graph ~importer:o.Objfile.pkg ~imported:dep)
            o.Objfile.imports)
        objfiles;
      match !missing with
      | Some e -> Error e
      | None -> (
          match Encl_pkg.Graph.topological_order graph with
          | Error cycle -> Error (Import_cycle cycle)
          | Ok topo ->
              if not (Hashtbl.mem seen entry) then Error (Unknown_entry entry)
              else begin
                (* Enclosure name uniqueness (program-wide identifiers). *)
                let enc_names = Hashtbl.create 8 in
                let dup_enc = ref None in
                List.iter
                  (fun (o : Objfile.t) ->
                    List.iter
                      (fun (e : Objfile.enclosure_decl) ->
                        if Hashtbl.mem enc_names e.Objfile.enc_name then
                          (if !dup_enc = None then dup_enc := Some e.Objfile.enc_name)
                        else Hashtbl.replace enc_names e.Objfile.enc_name ())
                      o.Objfile.enclosures)
                  objfiles;
                match !dup_enc with
                | Some e -> Error (Duplicate_enclosure e)
                | None ->
                    let sections = ref [] in
                    let symbols = ref [] in
                    let page = Phys.page_size in
                    let emit_section ~name ~owner ~kind ~addr ~size =
                      let s = Section.make ~name ~owner ~kind ~addr ~size in
                      sections := s :: !sections;
                      Section.end_addr s
                    in
                    (* Deterministic placement order: link order = given
                       object order. *)
                    let ordered = objfiles in
                    (* .text region: per-package text, enclosure closures
                       isolated into their own sections. *)
                    let text_cursor = ref text_base in
                    let closure_addrs = Hashtbl.create 8 in
                    List.iter
                      (fun (o : Objfile.t) ->
                        let enclosed_syms =
                          List.map (fun (e : Objfile.enclosure_decl) -> e.Objfile.enc_closure) o.Objfile.enclosures
                        in
                        let plain =
                          List.filter
                            (fun (s : Objfile.sym) -> not (List.mem s.Objfile.sym_name enclosed_syms))
                            o.Objfile.functions
                        in
                        if plain <> [] then begin
                          let name = o.Objfile.pkg ^ ".text" in
                          let placed, size =
                            place_syms ~section:name ~pkg:o.Objfile.pkg ~base:!text_cursor plain
                          in
                          symbols := placed @ !symbols;
                          text_cursor :=
                            emit_section ~name ~owner:o.Objfile.pkg ~kind:Section.Text
                              ~addr:!text_cursor ~size
                        end;
                        List.iter
                          (fun (e : Objfile.enclosure_decl) ->
                            let fn =
                              Option.get (Objfile.find_function o e.Objfile.enc_closure)
                            in
                            let name =
                              Printf.sprintf "%s.%s.text" o.Objfile.pkg e.Objfile.enc_name
                            in
                            let placed, size =
                              place_syms ~section:name ~pkg:o.Objfile.pkg ~base:!text_cursor [ fn ]
                            in
                            symbols := placed @ !symbols;
                            Hashtbl.replace closure_addrs
                              (o.Objfile.pkg, e.Objfile.enc_closure)
                              (List.hd placed).Image.ps_addr;
                            text_cursor :=
                              emit_section ~name ~owner:o.Objfile.pkg ~kind:Section.Text
                                ~addr:!text_cursor ~size)
                          o.Objfile.enclosures;
                        text_cursor := Encl_util.Bitops.align_up !text_cursor page)
                      ordered;
                    (* LitterBox user/super text. *)
                    let lb_user_text = !text_cursor in
                    text_cursor :=
                      emit_section ~name:(user_pkg ^ ".text") ~owner:user_pkg
                        ~kind:Section.Text ~addr:lb_user_text ~size:2048;
                    let lb_super_text = !text_cursor in
                    ignore
                      (emit_section ~name:(super_pkg ^ ".text") ~owner:super_pkg
                         ~kind:Section.Text ~addr:lb_super_text ~size:8192);
                    (* .rodata region. *)
                    let ro_cursor = ref rodata_base in
                    List.iter
                      (fun (o : Objfile.t) ->
                        if o.Objfile.constants <> [] then begin
                          let name = o.Objfile.pkg ^ ".rodata" in
                          let placed, size =
                            place_syms ~section:name ~pkg:o.Objfile.pkg ~base:!ro_cursor
                              o.Objfile.constants
                          in
                          symbols := placed @ !symbols;
                          ro_cursor :=
                            emit_section ~name ~owner:o.Objfile.pkg ~kind:Section.Rodata
                              ~addr:!ro_cursor ~size
                        end)
                      ordered;
                    (* .data region. *)
                    let data_cursor = ref data_base in
                    List.iter
                      (fun (o : Objfile.t) ->
                        if o.Objfile.globals <> [] then begin
                          let name = o.Objfile.pkg ^ ".data" in
                          let placed, size =
                            place_syms ~section:name ~pkg:o.Objfile.pkg ~base:!data_cursor
                              o.Objfile.globals
                          in
                          symbols := placed @ !symbols;
                          data_cursor :=
                            emit_section ~name ~owner:o.Objfile.pkg ~kind:Section.Data
                              ~addr:!data_cursor ~size
                        end)
                      ordered;
                    (* Enclosure descriptors. *)
                    let next_id = ref 0 in
                    let enclosures =
                      List.concat_map
                        (fun (o : Objfile.t) ->
                          List.map
                            (fun (e : Objfile.enclosure_decl) ->
                              let id = !next_id in
                              incr next_id;
                              {
                                Image.ed_id = id;
                                ed_owner = o.Objfile.pkg;
                                ed_name = e.Objfile.enc_name;
                                ed_policy = e.Objfile.enc_policy;
                                ed_closure = e.Objfile.enc_closure;
                                ed_closure_addr =
                                  Hashtbl.find closure_addrs
                                    (o.Objfile.pkg, e.Objfile.enc_closure);
                                ed_direct_deps = e.Objfile.enc_deps;
                              })
                            o.Objfile.enclosures)
                        ordered
                    in
                    (* Marked packages: every package reachable from an
                       enclosure's owner plus packages named in policies. *)
                    let marked = Hashtbl.create 16 in
                    List.iter
                      (fun (e : Image.enclosure_desc) ->
                        Hashtbl.replace marked e.Image.ed_owner ();
                        List.iter
                          (fun p ->
                            Hashtbl.replace marked p ();
                            List.iter
                              (fun q -> Hashtbl.replace marked q ())
                              (Encl_pkg.Graph.natural_deps graph p))
                          e.Image.ed_direct_deps;
                        List.iter
                          (fun p -> if Hashtbl.mem seen p then Hashtbl.replace marked p ())
                          (policy_packages e.Image.ed_policy))
                      enclosures;
                    let marked =
                      Hashtbl.fold (fun k () acc -> k :: acc) marked [] |> List.sort compare
                    in
                    (* LitterBox meta sections. *)
                    let meta_cursor = ref meta_base in
                    let npkgs = List.length objfiles + 2 in
                    meta_cursor :=
                      emit_section ~name:".pkgs" ~owner:super_pkg ~kind:Section.Pkgs
                        ~addr:!meta_cursor ~size:(64 * npkgs);
                    meta_cursor :=
                      emit_section ~name:".rstrct" ~owner:super_pkg ~kind:Section.Rstrct
                        ~addr:!meta_cursor
                        ~size:(max 64 (128 * List.length enclosures));
                    (* Verification entries: enclosure prolog/epilog sites
                       plus the runtime's transfer/execute sites. *)
                    let verif =
                      List.concat_map
                        (fun (e : Image.enclosure_desc) ->
                          let site = "enclosure:" ^ e.Image.ed_name in
                          [
                            { Image.ve_site = site; ve_hook = Image.Prolog };
                            { Image.ve_site = site; ve_hook = Image.Epilog };
                          ])
                        enclosures
                      @ [
                          { Image.ve_site = "runtime.mallocgc"; ve_hook = Image.Transfer };
                          { Image.ve_site = "runtime.scheduler"; ve_hook = Image.Execute };
                        ]
                    in
                    ignore
                      (emit_section ~name:".verif" ~owner:super_pkg ~kind:Section.Verif
                         ~addr:!meta_cursor
                         ~size:(max 64 (32 * List.length verif)));
                    (* Graph nodes for the synthetic LitterBox packages. *)
                    Encl_pkg.Graph.add_package graph user_pkg;
                    Encl_pkg.Graph.add_package graph super_pkg;
                    let init_order =
                      List.filter
                        (fun p ->
                          List.exists
                            (fun (o : Objfile.t) -> o.Objfile.pkg = p && o.Objfile.has_init)
                            objfiles)
                        topo
                    in
                    Ok
                      {
                        Image.graph;
                        sections = List.rev !sections;
                        symbols = List.rev !symbols;
                        enclosures;
                        verif;
                        marked;
                        init_order;
                        entry;
                      }
              end))
