type placed_sym = {
  ps_name : string;
  ps_pkg : string;
  ps_addr : int;
  ps_size : int;
  ps_section : string;
  ps_init : Bytes.t option;
}

type enclosure_desc = {
  ed_id : int;
  ed_owner : string;
  ed_name : string;
  ed_policy : string;
  ed_closure : string;
  ed_closure_addr : int;
  ed_direct_deps : string list;
}

type hook = Prolog | Epilog | Transfer | Execute

let hook_name = function
  | Prolog -> "prolog"
  | Epilog -> "epilog"
  | Transfer -> "transfer"
  | Execute -> "execute"

type verif_entry = { ve_site : string; ve_hook : hook }

type t = {
  graph : Encl_pkg.Graph.t;
  sections : Section.t list;
  symbols : placed_sym list;
  enclosures : enclosure_desc list;
  verif : verif_entry list;
  marked : string list;
  init_order : string list;
  entry : string;
}

let find_symbol t ~pkg name =
  List.find_opt (fun s -> s.ps_pkg = pkg && s.ps_name = name) t.symbols

let sections_of_pkg t pkg = List.filter (fun (s : Section.t) -> s.owner = pkg) t.sections
let section_at t addr = List.find_opt (fun s -> Section.contains s addr) t.sections
let enclosure_named t name = List.find_opt (fun e -> e.ed_name = name) t.enclosures

let verif_allows t ~site hook =
  List.exists (fun v -> v.ve_site = site && v.ve_hook = hook) t.verif

let pp_layout ppf t =
  let by_kind kinds =
    List.filter (fun (s : Section.t) -> List.mem s.kind kinds) t.sections
  in
  let region title kinds =
    Format.fprintf ppf "@,@[<v 2>%s:" title;
    List.iter (fun s -> Format.fprintf ppf "@,%a" Section.pp s) (by_kind kinds);
    Format.fprintf ppf "@]"
  in
  Format.fprintf ppf "@[<v>executable layout (entry: %s)" t.entry;
  region ".text (RX)" [ Section.Text ];
  region ".rodata (R)" [ Section.Rodata ];
  region ".data (RW)" [ Section.Data; Section.Arena ];
  region "LitterBox sections" [ Section.Pkgs; Section.Rstrct; Section.Verif ];
  Format.fprintf ppf "@,marked packages: %s"
    (if t.marked = [] then "(none)" else String.concat ", " t.marked);
  Format.fprintf ppf "@,enclosures:";
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  #%d %s.%s closure=%s@%#x policy=%S" e.ed_id
        e.ed_owner e.ed_name e.ed_closure e.ed_closure_addr e.ed_policy)
    t.enclosures;
  Format.fprintf ppf "@]"
