lib/elf/section.mli: Format Pte
