lib/elf/section.ml: Encl_util Format Phys Printf Pte
