lib/elf/objfile.ml: Bytes List Printf
