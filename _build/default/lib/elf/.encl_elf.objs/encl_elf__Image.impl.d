lib/elf/image.ml: Bytes Encl_pkg Format List Section String
