lib/elf/image.mli: Bytes Encl_pkg Format Section
