lib/elf/linker.ml: Encl_pkg Encl_util Hashtbl Image List Objfile Option Phys Printf Section String
