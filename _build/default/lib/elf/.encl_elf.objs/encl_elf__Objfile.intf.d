lib/elf/objfile.mli: Bytes
