lib/elf/linker.mli: Image Objfile
