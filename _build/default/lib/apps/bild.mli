(** A bild-like parallel image-processing public package (paper §6.2).

    The real bild is "a popular Go GitHub public package for parallel
    image processing" that "silently drags in over 160K lines of code of
    unverified origin" (15 public dependencies). This analogue implements
    [invert] over RGBA images held in simulated guest memory, processing
    tile by tile with per-tile scratch buffers — the allocation pattern
    that drives the paper's LB_MPK transfer overhead.

    The package's {e only} view of the source image is the one the caller
    grants: the Table 2 benchmark shares it read-only, so [invert] must
    copy before processing. *)

val pkg : string
(** ["bild"] *)

val dep_count : int
(** 15, as in Table 2. *)

val packages : unit -> Encl_golike.Runtime.pkgdef list
(** The bild package plus its synthetic dependency tree. *)

val enclosure_decl :
  name:string -> policy:string -> closure:string -> Encl_elf.Objfile.enclosure_decl
(** An enclosure declaration whose direct dependency is bild (convenience
    for applications that enclose bild calls). *)

val invert :
  Encl_golike.Runtime.t -> src:Encl_golike.Gbuf.t -> width:int -> height:int ->
  Encl_golike.Gbuf.t
(** Returns a freshly allocated inverted image in bild's arena. Allocates
    a working copy, an intermediate buffer, per-tile scratch, and the
    destination — all in bild's arena via the tagged allocator. *)

val grayscale :
  Encl_golike.Runtime.t -> src:Encl_golike.Gbuf.t -> width:int -> height:int ->
  Encl_golike.Gbuf.t
(** Luma conversion: each pixel's RGB channels are replaced by their
    average; alpha is preserved. *)

val blur :
  Encl_golike.Runtime.t -> src:Encl_golike.Gbuf.t -> width:int -> height:int ->
  Encl_golike.Gbuf.t
(** Horizontal 3-tap box blur per channel (edges clamped). *)

val checksum : Encl_golike.Runtime.t -> Encl_golike.Gbuf.t -> int
(** Byte sum (used by tests to check the transforms). *)
