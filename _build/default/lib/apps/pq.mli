(** A pq-like Postgres driver (the deprecated [lib/pq] the paper's wiki
    app depends on). Speaks {!Minidb}'s wire protocol over simulated
    sockets. *)

val pkg : string
(** ["pq"] *)

val dep_count : int
(** Synthetic dependency tree size; with {!Mux.dep_count} this totals the
    44 public packages of §6.3. *)

val packages : unit -> Encl_golike.Runtime.pkgdef list

type conn

val connect : Encl_golike.Runtime.t -> ip:int -> port:int -> conn
(** Opens the socket (a [socket] + [connect] system-call pair — under the
    wiki's db-proxy policy, [connect] is only permitted to the
    pre-defined database address). *)

val query :
  Encl_golike.Runtime.t -> conn -> string -> (string list list, string) result
(** Send one statement and read the reply. *)

val close : Encl_golike.Runtime.t -> conn -> unit
