type table = { columns : string list; mutable rows : string list list }

type t = { tables : (string, table) Hashtbl.t; mutable wire_buf : Buffer.t }

let create () = { tables = Hashtbl.create 8; wire_buf = Buffer.create 256 }

(* ------------------------------------------------------------------ *)
(* Tokenizer: words, commas, parens, and single-quoted strings.        *)

type token = Word of string | Str of string | Comma | Lparen | Rparen | Eq | Star

let tokenize sql =
  let n = String.length sql in
  let rec skip i = if i < n && (sql.[i] = ' ' || sql.[i] = '\n' || sql.[i] = '\t') then skip (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= n then Ok (List.rev acc)
    else
      match sql.[i] with
      | ',' -> go (i + 1) (Comma :: acc)
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | '=' -> go (i + 1) (Eq :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      | '\'' ->
          let rec find j = if j >= n then None else if sql.[j] = '\'' then Some j else find (j + 1) in
          (match find (i + 1) with
          | None -> Error "unterminated string literal"
          | Some j -> go (j + 1) (Str (String.sub sql (i + 1) (j - i - 1)) :: acc))
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' ->
          let rec find j =
            if j < n
               && ((sql.[j] >= 'a' && sql.[j] <= 'z')
                  || (sql.[j] >= 'A' && sql.[j] <= 'Z')
                  || (sql.[j] >= '0' && sql.[j] <= '9')
                  || sql.[j] = '_')
            then find (j + 1)
            else j
          in
          let j = find i in
          go j (Word (String.sub sql i (j - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []

let keyword w = String.uppercase_ascii w

(* ------------------------------------------------------------------ *)
(* Parser + evaluator                                                  *)

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Ok tbl
  | None -> Error (Printf.sprintf "no such table: %s" name)

let col_index tbl c =
  let rec go i = function
    | [] -> Error (Printf.sprintf "no such column: %s" c)
    | x :: _ when x = c -> Ok i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 tbl.columns

(* WHERE clause: [Some (col, value)] or [None]. *)
let parse_where tbl = function
  | [] -> Ok None
  | [ Word w; Word c; Eq; Str v ] when keyword w = "WHERE" -> (
      match col_index tbl c with Ok i -> Ok (Some (i, v)) | Error e -> Error e)
  | _ -> Error "malformed WHERE clause"

let matches where row =
  match where with None -> true | Some (i, v) -> List.nth row i = v

let rec split_commas acc cur = function
  | [] -> List.rev (List.rev cur :: acc)
  | Comma :: rest -> split_commas (List.rev cur :: acc) [] rest
  | tok :: rest -> split_commas acc (tok :: cur) rest

let exec t sql =
  match tokenize sql with
  | Error e -> Error e
  | Ok tokens -> (
      match tokens with
      | Word create :: Word table :: Word name :: Lparen :: rest
        when keyword create = "CREATE" && keyword table = "TABLE" -> (
          let rec cols acc = function
            | [ Rparen ] -> Ok (List.rev acc)
            | Word c :: Comma :: rest -> cols (c :: acc) rest
            | [ Word c; Rparen ] -> Ok (List.rev (c :: acc))
            | _ -> Error "malformed column list"
          in
          match cols [] rest with
          | Error e -> Error e
          | Ok columns ->
              if Hashtbl.mem t.tables name then
                Error (Printf.sprintf "table %s already exists" name)
              else begin
                Hashtbl.replace t.tables name { columns; rows = [] };
                Ok []
              end)
      | [ Word drop; Word table; Word name ]
        when keyword drop = "DROP" && keyword table = "TABLE" ->
          if Hashtbl.mem t.tables name then begin
            Hashtbl.remove t.tables name;
            Ok []
          end
          else Error (Printf.sprintf "no such table: %s" name)
      | Word insert :: Word into :: Word name :: Word values :: Lparen :: rest
        when keyword insert = "INSERT" && keyword into = "INTO"
             && keyword values = "VALUES" -> (
          match find_table t name with
          | Error e -> Error e
          | Ok tbl -> (
              let rec vals acc = function
                | [ Rparen ] -> Ok (List.rev acc)
                | Str v :: Comma :: rest -> vals (v :: acc) rest
                | [ Str v; Rparen ] -> Ok (List.rev (v :: acc))
                | _ -> Error "malformed VALUES list"
              in
              match vals [] rest with
              | Error e -> Error e
              | Ok row ->
                  if List.length row <> List.length tbl.columns then
                    Error "arity mismatch"
                  else begin
                    tbl.rows <- tbl.rows @ [ row ];
                    Ok []
                  end))
      | Word select :: rest when keyword select = "SELECT" -> (
          (* SELECT cols FROM t [WHERE ...] *)
          let rec split_from acc = function
            | Word w :: rest when keyword w = "FROM" -> Ok (List.rev acc, rest)
            | tok :: rest -> split_from (tok :: acc) rest
            | [] -> Error "missing FROM"
          in
          match split_from [] rest with
          | Error e -> Error e
          | Ok (col_toks, Word name :: where_toks) -> (
              match find_table t name with
              | Error e -> Error e
              | Ok tbl -> (
                  match parse_where tbl where_toks with
                  | Error e -> Error e
                  | Ok where -> (
                      let projection =
                        match col_toks with
                        | [ Star ] -> Ok None
                        | toks -> (
                            let groups = split_commas [] [] toks in
                            let rec proj acc = function
                              | [] -> Ok (Some (List.rev acc))
                              | [ Word c ] :: rest -> (
                                  match col_index tbl c with
                                  | Ok i -> proj (i :: acc) rest
                                  | Error e -> Error e)
                              | _ -> Error "malformed column list"
                            in
                            proj [] groups)
                      in
                      match projection with
                      | Error e -> Error e
                      | Ok proj ->
                          let selected = List.filter (matches where) tbl.rows in
                          let project row =
                            match proj with
                            | None -> row
                            | Some idxs -> List.map (fun i -> List.nth row i) idxs
                          in
                          Ok (List.map project selected))))
          | Ok (_, _) -> Error "malformed SELECT")
      | Word update :: Word name :: Word set :: Word c :: Eq :: Str v :: where_toks
        when keyword update = "UPDATE" && keyword set = "SET" -> (
          match find_table t name with
          | Error e -> Error e
          | Ok tbl -> (
              match col_index tbl c with
              | Error e -> Error e
              | Ok ci -> (
                  match parse_where tbl where_toks with
                  | Error e -> Error e
                  | Ok where ->
                      tbl.rows <-
                        List.map
                          (fun row ->
                            if matches where row then
                              List.mapi (fun i x -> if i = ci then v else x) row
                            else row)
                          tbl.rows;
                      Ok [])))
      | Word delete :: Word from :: Word name :: where_toks
        when keyword delete = "DELETE" && keyword from = "FROM" -> (
          match find_table t name with
          | Error e -> Error e
          | Ok tbl -> (
              match parse_where tbl where_toks with
              | Error e -> Error e
              | Ok where ->
                  tbl.rows <- List.filter (fun row -> not (matches where row)) tbl.rows;
                  Ok []))
      | _ -> Error "unrecognized statement")

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare

let row_count t name =
  Option.map (fun tbl -> List.length tbl.rows) (Hashtbl.find_opt t.tables name)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)

let encode_request sql = Bytes.of_string (sql ^ "\000")

let encode_response = function
  | Ok rows ->
      let body = String.concat "\n" (List.map (String.concat "\t") rows) in
      Bytes.of_string (body ^ "\000")
  | Error e -> Bytes.of_string ("ERROR: " ^ e ^ "\000")

let decode_response data =
  let s = Bytes.to_string data in
  let s = if String.length s > 0 && s.[String.length s - 1] = '\000' then String.sub s 0 (String.length s - 1) else s in
  if String.length s >= 7 && String.sub s 0 7 = "ERROR: " then
    Error (String.sub s 7 (String.length s - 7))
  else if s = "" then Ok []
  else
    Ok (String.split_on_char '\n' s |> List.map (String.split_on_char '\t'))

let wire_server t chunk =
  Buffer.add_bytes t.wire_buf chunk;
  let data = Buffer.contents t.wire_buf in
  let responses = ref [] in
  let rec consume start =
    match String.index_from_opt data start '\000' with
    | None ->
        Buffer.clear t.wire_buf;
        Buffer.add_string t.wire_buf (String.sub data start (String.length data - start))
    | Some stop ->
        let sql = String.sub data start (stop - start) in
        responses := encode_response (exec t sql) :: !responses;
        consume (stop + 1)
  in
  consume 0;
  List.rev !responses
