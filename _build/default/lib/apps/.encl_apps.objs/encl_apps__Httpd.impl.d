lib/apps/httpd.ml: Buffer Bytes Clock Cpu Encl_golike Encl_kernel Encl_litterbox Printf String
