lib/apps/deps.mli: Encl_golike
