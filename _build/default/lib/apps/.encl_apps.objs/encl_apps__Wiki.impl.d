lib/apps/wiki.ml: Bytes Clock Cpu Encl_elf Encl_golike Encl_kernel Encl_litterbox Minidb Mux Pq Printf String
