lib/apps/scenarios.ml: Bild Bytes Clock Encl_elf Encl_golike Encl_kernel Encl_litterbox Fasthttp Httpd List Printf String Wiki
