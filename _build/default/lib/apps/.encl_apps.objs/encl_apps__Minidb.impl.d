lib/apps/minidb.ml: Buffer Bytes Hashtbl List Option Printf String
