lib/apps/malice.ml: Bytes Clock Cpu Encl_elf Encl_golike Encl_kernel Encl_litterbox Format Printf String
