lib/apps/minidb.mli: Bytes
