lib/apps/deps.ml: Bytes Encl_golike List Printf
