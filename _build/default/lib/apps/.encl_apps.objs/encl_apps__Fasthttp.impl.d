lib/apps/fasthttp.ml: Bytes Clock Cpu Deps Encl_golike Encl_kernel Encl_litterbox Printf String
