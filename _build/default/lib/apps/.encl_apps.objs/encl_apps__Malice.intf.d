lib/apps/malice.mli: Encl_litterbox Format
