lib/apps/wiki.mli: Encl_golike Minidb
