lib/apps/mux.mli: Encl_golike
