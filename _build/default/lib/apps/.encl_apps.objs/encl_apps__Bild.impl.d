lib/apps/bild.ml: Bytes Char Clock Deps Encl_elf Encl_golike Encl_litterbox
