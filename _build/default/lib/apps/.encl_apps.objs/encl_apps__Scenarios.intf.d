lib/apps/scenarios.mli: Encl_golike Encl_litterbox
