lib/apps/mux.ml: Clock Deps Encl_golike List Option String
