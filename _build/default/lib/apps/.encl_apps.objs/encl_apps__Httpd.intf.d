lib/apps/httpd.mli: Bytes Encl_golike Encl_kernel
