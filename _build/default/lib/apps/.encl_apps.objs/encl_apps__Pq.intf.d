lib/apps/pq.mli: Encl_golike
