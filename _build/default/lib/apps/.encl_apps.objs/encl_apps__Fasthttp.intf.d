lib/apps/fasthttp.mli: Encl_golike
