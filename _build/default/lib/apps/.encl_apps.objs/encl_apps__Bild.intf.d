lib/apps/bild.mli: Encl_elf Encl_golike
