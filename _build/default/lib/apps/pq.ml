module Runtime = Encl_golike.Runtime
module Gbuf = Encl_golike.Gbuf
module Sched = Encl_golike.Sched
module K = Encl_kernel.Kernel
module Machine = Encl_litterbox.Machine

let pkg = "pq"
let dep_count = 18

(* Driver-side compute per query (ns): escaping, protocol framing, row
   decoding. *)
let query_overhead_ns = 2_600

let packages () =
  let deps, root = Deps.tree ~prefix:pkg ~count:dep_count in
  Runtime.package pkg ~imports:[ root ]
    ~functions:[ ("connect", 1024); ("query", 2048); ("close", 256) ]
    ~globals:[ ("conn_pool", 256, None) ]
    ()
  :: deps

type conn = { fd : int; buf : Gbuf.t }

let connect rt ~ip ~port =
  Runtime.in_function rt ~pkg ~fn:"connect" @@ fun () ->
  let fd = Runtime.syscall_exn rt K.Socket in
  ignore (Runtime.syscall_exn rt (K.Connect { fd; ip; port }));
  { fd; buf = Runtime.alloc_in rt ~pkg 8192 }

let query rt conn sql =
  Runtime.in_function rt ~pkg ~fn:"query" @@ fun () ->
  let m = Runtime.machine rt in
  Clock.consume (Runtime.clock rt) Clock.Compute query_overhead_ns;
  let req = Minidb.encode_request sql in
  Gbuf.write_bytes m (Gbuf.sub conn.buf ~pos:0 ~len:(Bytes.length req)) req;
  (match
     Runtime.syscall rt
       (K.Send { fd = conn.fd; buf = conn.buf.Gbuf.addr; len = Bytes.length req })
   with
  | Ok _ -> ()
  | Error e -> failwith ("pq: send failed: " ^ K.errno_name e));
  let kernel = m.Machine.kernel in
  Sched.wait_until (Runtime.sched rt) (fun () -> K.fd_readable kernel conn.fd);
  match
    Runtime.syscall rt
      (K.Recv { fd = conn.fd; buf = conn.buf.Gbuf.addr; len = conn.buf.Gbuf.len })
  with
  | Error e -> Error ("recv failed: " ^ K.errno_name e)
  | Ok n ->
      let data = Cpu.read_bytes m.Machine.cpu ~addr:conn.buf.Gbuf.addr ~len:n in
      Minidb.decode_response data

let close rt conn =
  Runtime.in_function rt ~pkg ~fn:"close" @@ fun () ->
  ignore (Runtime.syscall rt (K.Close conn.fd))
