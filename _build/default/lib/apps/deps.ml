module Runtime = Encl_golike.Runtime

let name prefix i = Printf.sprintf "%s_dep%d" prefix i

let names ~prefix ~count = List.init count (name prefix)

let tree ~prefix ~count =
  if count < 1 then invalid_arg "Deps.tree: count must be >= 1";
  let pkg i =
    let imports =
      List.filter (fun j -> j < count) [ (2 * i) + 1; (2 * i) + 2 ]
      |> List.map (name prefix)
    in
    Runtime.package (name prefix i) ~imports
      ~functions:[ ("helper", 96); ("internal", 64) ]
      ~globals:[ ("state", 64, None) ]
      ~constants:[ ("version", 16, Some (Bytes.of_string "v1.0")) ]
      ()
  in
  (List.init count pkg, name prefix 0)
