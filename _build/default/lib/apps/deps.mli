(** Synthetic public-package dependency trees.

    The paper's macrobenchmarks stress that importing one public package
    silently drags in large dependency graphs (bild: 15 packages / 166 kLOC;
    FastHTTP: 100 packages / 374 kLOC). This module fabricates such trees:
    binary-tree-shaped import graphs of small leaf packages, so that
    enclosing the root demonstrably covers every transitive dependency. *)

val tree :
  prefix:string -> count:int -> Encl_golike.Runtime.pkgdef list * string
(** [tree ~prefix ~count] builds [count] packages named [prefix_depN];
    package [N] imports [2N+1] and [2N+2] when they exist. Returns the
    package definitions and the root package's name (to be imported by
    the public package). Each package carries a few functions and a small
    amount of data so the linker gives it real sections. *)

val names : prefix:string -> count:int -> string list
