(** A gorilla/mux-like HTTP request router (paper §6.3). *)

val pkg : string
(** ["mux"] *)

val dep_count : int

val packages : unit -> Encl_golike.Runtime.pkgdef list

type 'a router

val router : Encl_golike.Runtime.t -> 'a router

val handle : 'a router -> meth:string -> pattern:string -> 'a -> unit
(** [pattern] is a path prefix; the longest matching prefix wins (with
    method equality). *)

val route : Encl_golike.Runtime.t -> 'a router -> meth:string -> path:string -> 'a option
