(** A miniature Postgres-like SQL database.

    The paper's wiki application (Figure 5) stores its pages in a Postgres
    database reached over the network through the [pq] driver. This module
    is that substrate: an in-memory relational engine with a small SQL
    dialect, plus a wire-protocol server suitable for registration as a
    simulated remote host.

    Dialect:
    {v
      CREATE TABLE t (c1, c2, ...)
      DROP TABLE t
      INSERT INTO t VALUES ('v1', 'v2', ...)
      SELECT * | c1, c2 FROM t [WHERE c = 'v']
      UPDATE t SET c = 'v' [WHERE c2 = 'v2']
      DELETE FROM t [WHERE c = 'v']
    v}

    All values are strings; [WHERE] supports a single equality. *)

type t

val create : unit -> t

val exec : t -> string -> (string list list, string) result
(** Run one statement; returns rows (for [SELECT]) or [[]]. *)

val table_names : t -> string list
val row_count : t -> string -> int option

(** {2 Wire protocol}

    Each request is a SQL statement terminated by ['\000']. The response
    is rows joined by ['\n'] (columns by ['\t']), or ["ERROR: ..."], also
    terminated by ['\000']. *)

val wire_server : t -> Bytes.t -> Bytes.t list
(** Stateful responder for {!Encl_kernel.Net.register_remote}: buffers
    partial requests across chunks. *)

val encode_request : string -> Bytes.t
val decode_response : Bytes.t -> (string list list, string) result
