module Runtime = Encl_golike.Runtime

let pkg = "mux"
let dep_count = 24

(* Routing-table lookup cost (ns). *)
let route_ns = 700

let packages () =
  let deps, root = Deps.tree ~prefix:pkg ~count:dep_count in
  Runtime.package pkg ~imports:[ root ]
    ~functions:[ ("new_router", 512); ("handle", 512); ("route", 1024) ]
    ~globals:[ ("routes", 1024, None) ]
    ()
  :: deps

type 'a router = { mutable routes : (string * string * 'a) list }

let router rt =
  Runtime.in_function rt ~pkg ~fn:"new_router" @@ fun () -> { routes = [] }

let handle r ~meth ~pattern v = r.routes <- (meth, pattern, v) :: r.routes

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

let route rt r ~meth ~path =
  Runtime.in_function rt ~pkg ~fn:"route" @@ fun () ->
  Clock.consume (Runtime.clock rt) Clock.Compute route_ns;
  let candidates =
    List.filter (fun (m, p, _) -> m = meth && is_prefix ~prefix:p path) r.routes
  in
  let best =
    List.fold_left
      (fun acc (_, p, v) ->
        match acc with
        | Some (bp, _) when String.length bp >= String.length p -> acc
        | _ -> Some (p, v))
      None candidates
  in
  Option.map snd best
