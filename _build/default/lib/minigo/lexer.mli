(** Lexer for the mini-Go surface language (see {!Minigo}). *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW_PACKAGE
  | KW_IMPORT
  | KW_FUNC
  | KW_WITH  (** the paper's enclosure keyword (§2.2 / §5.1) *)
  | KW_VAR
  | KW_CONST
  | KW_RETURN
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_GO
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | DEFINE  (** [:=] *)
  | ASSIGN  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ  (** [==] *)
  | NE
  | EOF

val token_name : token -> string

type located = { tok : token; line : int }

exception Lex_error of { line : int; message : string }

val tokenize : string -> located list
(** Line comments start with [//]; strings use double quotes with the
    usual backslash escapes (n, t, backslash, quote). Raises {!Lex_error}
    on bad input. *)
