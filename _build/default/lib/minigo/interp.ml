module Runtime = Encl_golike.Runtime
module Gbuf = Encl_golike.Gbuf
module Machine = Encl_litterbox.Machine
module K = Encl_kernel.Kernel

type value =
  | VUnit
  | VInt of int
  | VBool of bool
  | VStr of string
  | VBuf of Gbuf.t
  | VClosure of Ast.enclosure * string * scope
  | VChan of value Encl_golike.Channel.t

and scope = (string, value) Hashtbl.t

let value_to_string = function
  | VUnit -> "()"
  | VInt n -> string_of_int n
  | VBool b -> string_of_bool b
  | VStr s -> s
  | VBuf b -> Printf.sprintf "<buf %d bytes @%#x>" b.Gbuf.len b.Gbuf.addr
  | VClosure (enc, _, _) ->
      Printf.sprintf "<enclosure %s>" (Option.value ~default:"?" enc.Ast.e_id)
  | VChan _ -> "<channel>"

type ctx = {
  rt : Runtime.t;
  compiled : Compile.compiled;
  out : Buffer.t;
}

exception Runtime_error of string
exception Return_v of value

let err fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

let create rt compiled = { rt; compiled; out = Buffer.create 256 }
let runtime t = t.rt
let output t = Buffer.contents t.out

let find_pkg ctx name =
  List.find_opt (fun p -> p.Ast.p_name = name) ctx.compiled.Compile.c_prog

let find_fn ctx ~pkg ~fn =
  match find_pkg ctx pkg with
  | None -> None
  | Some p -> List.find_opt (fun f -> f.Ast.fn_name = fn) p.Ast.p_funcs

let machine ctx = Runtime.machine ctx.rt

(* Package-level storage: vars are 8-byte little-endian slots in .data;
   consts live in .rodata with a recorded length. *)
let read_var ctx ~pkg name =
  let g = Runtime.global ctx.rt ~pkg name in
  VInt (Int64.to_int (Gbuf.get64 (machine ctx) g 0))

let write_var ctx ~pkg name v =
  let g = Runtime.global ctx.rt ~pkg name in
  match v with
  | VInt n -> Gbuf.set64 (machine ctx) g 0 (Int64.of_int n)
  | VBool b -> Gbuf.set64 (machine ctx) g 0 (if b then 1L else 0L)
  | _ -> err "package variable %s.%s can only hold integers" pkg name

let read_const ctx ~pkg name info =
  let g = Runtime.global ctx.rt ~pkg name in
  if info.Compile.ci_is_str then
    VStr (Bytes.to_string (Gbuf.read_bytes (machine ctx) (Gbuf.sub g ~pos:0 ~len:info.Compile.ci_len)))
  else VInt (Int64.to_int (Gbuf.get64 (machine ctx) g 0))

let truthy = function
  | VBool b -> b
  | VInt n -> n <> 0
  | v -> err "condition is not a boolean: %s" (value_to_string v)

let as_int what = function
  | VInt n -> n
  | v -> err "%s expects an integer, got %s" what (value_to_string v)

let as_str what = function
  | VStr s -> s
  | v -> err "%s expects a string, got %s" what (value_to_string v)

let as_buf what = function
  | VBuf b -> b
  | v -> err "%s expects a buffer, got %s" what (value_to_string v)

let eval_binop op a b =
  match (op, a, b) with
  | Ast.Add, VInt x, VInt y -> VInt (x + y)
  | Ast.Add, VStr x, VStr y -> VStr (x ^ y)
  | Ast.Sub, VInt x, VInt y -> VInt (x - y)
  | Ast.Mul, VInt x, VInt y -> VInt (x * y)
  | Ast.Div, VInt x, VInt y ->
      if y = 0 then err "division by zero" else VInt (x / y)
  | Ast.Mod, VInt x, VInt y ->
      if y = 0 then err "division by zero" else VInt (x mod y)
  | Ast.Lt, VInt x, VInt y -> VBool (x < y)
  | Ast.Le, VInt x, VInt y -> VBool (x <= y)
  | Ast.Gt, VInt x, VInt y -> VBool (x > y)
  | Ast.Ge, VInt x, VInt y -> VBool (x >= y)
  | Ast.Eq, x, y -> VBool (x = y)
  | Ast.Ne, x, y -> VBool (x <> y)
  | _ ->
      err "type error: %s %s %s" (value_to_string a)
        (match op with
        | Ast.Add -> "+"
        | Ast.Sub -> "-"
        | Ast.Mul -> "*"
        | Ast.Div -> "/"
        | Ast.Mod -> "%"
        | _ -> "?")
        (value_to_string b)

(* Scratch guest buffers for builtins that cross the syscall boundary. *)
let stage_string ctx s =
  let buf = Runtime.alloc ctx.rt (max 8 (String.length s)) in
  Gbuf.write_string (machine ctx) (Gbuf.sub buf ~pos:0 ~len:(String.length s)) s;
  buf

let import_enclosure ctx ~importer ~target =
  match find_pkg ctx importer with
  | None -> None
  | Some p ->
      if List.mem_assoc target p.Ast.p_import_policies then
        Some (Printf.sprintf "%s_init_%s" importer target)
      else None

let rec eval ctx ~pkg env expr =
  match expr with
  | Ast.Int n -> VInt n
  | Ast.Str s -> VStr s
  | Ast.Bool b -> VBool b
  | Ast.Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt ctx.compiled.Compile.c_consts (pkg, x) with
          | Some info -> read_const ctx ~pkg x info
          | None -> (
              match find_pkg ctx pkg with
              | Some p when List.exists (fun v -> v.Ast.v_name = x) p.Ast.p_vars ->
                  read_var ctx ~pkg x
              | _ -> err "unbound variable %s" x)))
  | Ast.Binop (op, a, b) -> eval_binop op (eval ctx ~pkg env a) (eval ctx ~pkg env b)
  | Ast.Enclosure enc ->
      (* The closure captures the defining function's environment by
         reference. *)
      VClosure (enc, pkg, env)
  | Ast.Pkg_call (target, fn, args) -> (
      let argv = List.map (eval ctx ~pkg env) args in
      (* Program-wide policies (paper 3.2): when the importing package
         tagged the import with a policy, every call into the target is
         automatically wrapped in the synthesized enclosure. *)
      match import_enclosure ctx ~importer:pkg ~target with
      | Some enc_name ->
          Runtime.with_enclosure ctx.rt enc_name (fun () ->
              call_function ctx ~pkg:target ~fn argv)
      | None -> call_function ctx ~pkg:target ~fn argv)
  | Ast.Call (name, args) -> (
      let argv () = List.map (eval ctx ~pkg env) args in
      match Hashtbl.find_opt env name with
      | Some (VClosure (enc, owner, captured)) ->
          if args <> [] then err "closures take no arguments";
          call_closure ctx enc owner captured
      | Some v -> err "%s is not callable (%s)" name (value_to_string v)
      | None ->
          if find_fn ctx ~pkg ~fn:name <> None then
            call_function ctx ~pkg ~fn:name (argv ())
          else builtin ctx ~pkg env name (argv ()))

and call_closure ctx enc owner captured =
  let id =
    match enc.Ast.e_id with
    | Some id -> id
    | None -> err "enclosure was not registered by the compiler"
  in
  Runtime.with_enclosure ctx.rt id (fun () ->
      match exec_block ctx ~pkg:owner captured enc.Ast.body with
      | () -> VUnit
      | exception Return_v v -> v)

and call_function ctx ~pkg ~fn argv =
  match find_fn ctx ~pkg ~fn with
  | None -> err "unknown function %s.%s" pkg fn
  | Some f ->
      if List.length f.Ast.fn_params <> List.length argv then
        err "%s.%s expects %d arguments, got %d" pkg fn
          (List.length f.Ast.fn_params) (List.length argv);
      Runtime.in_function ctx.rt ~pkg ~fn (fun () ->
          let env = Hashtbl.create 8 in
          List.iter2 (fun p v -> Hashtbl.replace env p v) f.Ast.fn_params argv;
          match exec_block ctx ~pkg env f.Ast.fn_body with
          | () -> VUnit
          | exception Return_v v -> v)

and exec_block ctx ~pkg env b = List.iter (exec_stmt ctx ~pkg env) b

and exec_stmt ctx ~pkg env = function
  | Ast.Define (x, e) -> Hashtbl.replace env x (eval ctx ~pkg env e)
  | Ast.Assign (x, e) ->
      let v = eval ctx ~pkg env e in
      if Hashtbl.mem env x then Hashtbl.replace env x v
      else (
        match find_pkg ctx pkg with
        | Some p when List.exists (fun vd -> vd.Ast.v_name = x) p.Ast.p_vars ->
            write_var ctx ~pkg x v
        | _ -> err "assignment to unbound variable %s" x)
  | Ast.Expr e -> ignore (eval ctx ~pkg env e)
  | Ast.Return None -> raise (Return_v VUnit)
  | Ast.Return (Some e) -> raise (Return_v (eval ctx ~pkg env e))
  | Ast.If (c, t, e) ->
      if truthy (eval ctx ~pkg env c) then exec_block ctx ~pkg env t
      else Option.iter (exec_block ctx ~pkg env) e
  | Ast.For (c, body) ->
      let rec loop () =
        if truthy (eval ctx ~pkg env c) then begin
          exec_block ctx ~pkg env body;
          loop ()
        end
      in
      loop ()
  | Ast.Go e ->
      (* The goroutine inherits the current execution environment
         (paper 5.1); the spawned body re-evaluates the call. *)
      Runtime.go ctx.rt (fun () -> ignore (eval ctx ~pkg env e))

and builtin ctx ~pkg:_ env name argv =
  ignore env;
  let m = machine ctx in
  match (name, argv) with
  | "print", [ v ] ->
      Buffer.add_string ctx.out (value_to_string v);
      Buffer.add_char ctx.out '\n';
      VUnit
  | "alloc", [ VInt n ] -> VBuf (Runtime.alloc ctx.rt n)
  | "len", [ VBuf b ] -> VInt b.Gbuf.len
  | "len", [ VStr s ] -> VInt (String.length s)
  | "get", [ b; i ] -> VInt (Gbuf.get m (as_buf "get" b) (as_int "get" i))
  | "set", [ b; i; v ] ->
      Gbuf.set m (as_buf "set" b) (as_int "set" i) (as_int "set" v);
      VUnit
  | "fill", [ b; v ] ->
      Gbuf.fill m (as_buf "fill" b) (as_int "fill" v);
      VUnit
  | "read_str", [ VBuf b ] ->
      let s = Gbuf.read_string m b in
      VStr
        (match String.index_opt s '\000' with
        | Some i -> String.sub s 0 i
        | None -> s)
  | "write_str", [ b; s ] ->
      let b = as_buf "write_str" b and s = as_str "write_str" s in
      if String.length s > b.Gbuf.len then err "write_str: string too large";
      Gbuf.write_string m (Gbuf.sub b ~pos:0 ~len:(String.length s)) s;
      VUnit
  | "make_chan", [ VInt cap ] ->
      VChan (Encl_golike.Channel.create (Runtime.sched ctx.rt) ~cap)
  | "chan_send", [ VChan c; v ] ->
      Encl_golike.Channel.send c v;
      VUnit
  | "chan_recv", [ VChan c ] -> Encl_golike.Channel.recv c
  | "chan_len", [ VChan c ] -> VInt (Encl_golike.Channel.length c)
  | "yield", [] ->
      Runtime.yield ctx.rt;
      VUnit
  | "getuid", [] -> (
      match Runtime.syscall ctx.rt K.Getuid with
      | Ok uid -> VInt uid
      | Error e -> err "getuid failed: %s" (K.errno_name e))
  | "mkdir", [ VStr path ] -> (
      match Runtime.syscall ctx.rt (K.Mkdir path) with
      | Ok _ -> VUnit
      | Error e -> err "mkdir %s failed: %s" path (K.errno_name e))
  | "write_file", [ VStr path; VStr content ] -> (
      let staged = stage_string ctx content in
      match Runtime.syscall ctx.rt (K.Open { path; flags = [ K.O_wronly; K.O_creat ] }) with
      | Error e -> err "open %s failed: %s" path (K.errno_name e)
      | Ok fd ->
          (match
             Runtime.syscall ctx.rt
               (K.Write { fd; buf = staged.Gbuf.addr; len = String.length content })
           with
          | Ok _ -> ()
          | Error e -> err "write %s failed: %s" path (K.errno_name e));
          (match Runtime.syscall ctx.rt (K.Close fd) with
          | Ok _ -> ()
          | Error e -> err "close %s failed: %s" path (K.errno_name e));
          VUnit)
  | "read_file", [ VStr path ] -> (
      let staged = Runtime.alloc ctx.rt 4096 in
      match Runtime.syscall ctx.rt (K.Open { path; flags = [ K.O_rdonly ] }) with
      | Error e -> err "open %s failed: %s" path (K.errno_name e)
      | Ok fd -> (
          match
            Runtime.syscall ctx.rt (K.Read { fd; buf = staged.Gbuf.addr; len = 4096 })
          with
          | Error e -> err "read %s failed: %s" path (K.errno_name e)
          | Ok n ->
              ignore (Runtime.syscall ctx.rt (K.Close fd));
              VStr
                (Bytes.to_string
                   (Gbuf.read_bytes m (Gbuf.sub staged ~pos:0 ~len:n)))))
  | "sleep", [ VInt ns ] ->
      ignore (Runtime.syscall ctx.rt (K.Nanosleep ns));
      VUnit
  | "itoa", [ VInt n ] -> VStr (string_of_int n)
  | "concat", [ VStr a; VStr b ] -> VStr (a ^ b)
  | _, _ ->
      err "unknown function or bad arguments: %s/%d" name (List.length argv)
