module Runtime = Encl_golike.Runtime
module Objfile = Encl_elf.Objfile
module Enclosure = Encl_enclosure.Enclosure

type const_info = { ci_len : int; ci_is_str : bool }

type init_plan = { ip_pkg : string; ip_enclosure : string option }

type compiled = {
  c_prog : Ast.program;
  c_pkgdefs : Runtime.pkgdef list;
  c_consts : (string * string, const_info) Hashtbl.t;
  c_inits : init_plan list;
}

let builtins =
  [
    "print"; "alloc"; "len"; "get"; "set"; "fill"; "read_str"; "write_str";
    "getuid"; "write_file"; "read_file"; "mkdir"; "sleep"; "itoa"; "concat";
    "make_chan"; "chan_send"; "chan_recv"; "chan_len"; "yield";
  ]

let is_builtin name = List.mem name builtins

(* Walk a closure body collecting the packages it invokes. Nested
   enclosures are separate closures with their own dependency sets. *)
let enclosure_deps ~own body =
  let deps = ref [] in
  let add p = if not (List.mem p !deps) then deps := p :: !deps in
  let rec walk_block b = List.iter walk_stmt b
  and walk_stmt = function
    | Ast.Define (_, e) | Ast.Assign (_, e) | Ast.Expr e -> walk_expr e
    | Ast.Return None -> ()
    | Ast.Return (Some e) -> walk_expr e
    | Ast.If (c, t, e) ->
        walk_expr c;
        walk_block t;
        Option.iter walk_block e
    | Ast.For (c, b) ->
        walk_expr c;
        walk_block b
    | Ast.Go e -> walk_expr e
  and walk_expr = function
    | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Var _ -> ()
    | Ast.Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Ast.Call (f, args) ->
        if not (is_builtin f) then add own;
        List.iter walk_expr args
    | Ast.Pkg_call (p, _, args) ->
        add p;
        List.iter walk_expr args
    | Ast.Enclosure _ ->
        (* A nested enclosure is invoked through a local closure value;
           its own dependencies are computed separately. *)
        ()
  in
  walk_block body;
  List.sort compare !deps

(* Size model: the "machine code" footprint of a block. *)
let rec block_size b = List.fold_left (fun acc s -> acc + stmt_size s) 16 b

and stmt_size = function
  | Ast.Define (_, e) | Ast.Assign (_, e) | Ast.Expr e -> 8 + expr_size e
  | Ast.Return None -> 4
  | Ast.Return (Some e) -> 4 + expr_size e
  | Ast.If (c, t, e) ->
      expr_size c + block_size t
      + (match e with Some b -> block_size b | None -> 0)
  | Ast.For (c, b) -> expr_size c + block_size b
  | Ast.Go e -> 12 + expr_size e

and expr_size = function
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Var _ -> 4
  | Ast.Binop (_, a, b) -> 4 + expr_size a + expr_size b
  | Ast.Call (_, args) | Ast.Pkg_call (_, _, args) ->
      12 + List.fold_left (fun acc e -> acc + expr_size e) 0 args
  | Ast.Enclosure _ -> 16 (* just the closure construction *)

exception Compile_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

let compile prog =
  try
    let pkg_names = List.map (fun p -> p.Ast.p_name) prog in
    let find_pkg name = List.find_opt (fun p -> p.Ast.p_name = name) prog in
    let consts = Hashtbl.create 32 in
    (* Per-package compilation. *)
    let pkgdefs =
      List.map
        (fun (p : Ast.pkg) ->
          let own = p.Ast.p_name in
          List.iter
            (fun i ->
              if not (List.mem i pkg_names) then
                err "package %s imports unknown package %s" own i)
            p.Ast.p_imports;
          (* Reference checks + enclosure collection over every body. *)
          let enclosures = ref [] in
          let counter = ref 0 in
          let rec check_block b = List.iter check_stmt b
          and check_stmt = function
            | Ast.Define (_, e) | Ast.Assign (_, e) | Ast.Expr e -> check_expr e
            | Ast.Return None -> ()
            | Ast.Return (Some e) -> check_expr e
            | Ast.If (c, t, e) ->
                check_expr c;
                check_block t;
                Option.iter check_block e
            | Ast.For (c, b) ->
                check_expr c;
                check_block b
            | Ast.Go e -> check_expr e
          and check_expr = function
            | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Var _ -> ()
            | Ast.Binop (_, a, b) ->
                check_expr a;
                check_expr b
            | Ast.Call (f, args) ->
                (* Either a builtin, a local function, or a closure-typed
                   variable: variables cannot be checked statically in
                   this dynamically-typed toy, so only reject nothing
                   here. Builtin and local functions are both fine. *)
                ignore f;
                List.iter check_expr args
            | Ast.Pkg_call (target, fn, args) ->
                if not (List.mem target p.Ast.p_imports) then
                  err "package %s calls %s.%s without importing %s" own target fn
                    target;
                (match find_pkg target with
                | None -> err "package %s calls unknown package %s" own target
                | Some tp ->
                    if
                      not
                        (List.exists (fun f -> f.Ast.fn_name = fn) tp.Ast.p_funcs)
                    then err "package %s has no function %s (called from %s)" target fn own);
                List.iter check_expr args
            | Ast.Enclosure enc ->
                (* Compile-time policy validation (paper §5.1). *)
                (match Enclosure.check_policy enc.Ast.policy with
                | Ok () -> ()
                | Error e -> err "package %s: invalid enclosure policy: %s" own e);
                let id = Printf.sprintf "%s_enc%d" own !counter in
                incr counter;
                enc.Ast.e_id <- Some id;
                let deps = enclosure_deps ~own enc.Ast.body in
                List.iter
                  (fun d ->
                    if d <> own && not (List.mem d p.Ast.p_imports) then
                      err "enclosure %s uses package %s without importing it" id d)
                  deps;
                enclosures :=
                  {
                    Objfile.enc_name = id;
                    enc_policy = enc.Ast.policy;
                    enc_closure = id ^ "_body";
                    enc_deps = deps;
                  }
                  :: !enclosures;
                check_block enc.Ast.body
          in
          List.iter (fun f -> check_block f.Ast.fn_body) p.Ast.p_funcs;
          (* Globals: integers and booleans live in .data as 8-byte
             slots; constants may also be strings in .rodata. *)
          let global_slot (v : Ast.vardecl) =
            match v.Ast.v_init with
            | Ast.Int n ->
                let b = Bytes.create 8 in
                Bytes.set_int64_le b 0 (Int64.of_int n);
                (v.Ast.v_name, 8, Some b)
            | Ast.Bool flag ->
                let b = Bytes.create 8 in
                Bytes.set_int64_le b 0 (if flag then 1L else 0L);
                (v.Ast.v_name, 8, Some b)
            | _ -> err "package %s: var %s must be initialised with a literal" own v.Ast.v_name
          in
          let const_slot (v : Ast.vardecl) =
            match v.Ast.v_init with
            | Ast.Str s ->
                Hashtbl.replace consts (own, v.Ast.v_name)
                  { ci_len = String.length s; ci_is_str = true };
                (v.Ast.v_name, max 8 (String.length s), Some (Bytes.of_string s))
            | Ast.Int n ->
                Hashtbl.replace consts (own, v.Ast.v_name) { ci_len = 8; ci_is_str = false };
                let b = Bytes.create 8 in
                Bytes.set_int64_le b 0 (Int64.of_int n);
                (v.Ast.v_name, 8, Some b)
            | _ -> err "package %s: const %s must be a string or integer literal" own v.Ast.v_name
          in
          (* Tagged imports: import foo with "policy" wraps foo's init
             function in a synthesized enclosure. *)
          List.iter
            (fun (target, policy) ->
              if not (List.mem target p.Ast.p_imports) then
                err "package %s tags an import it does not declare: %s" own target;
              (match Enclosure.check_policy policy with
              | Ok () -> ()
              | Error e -> err "package %s: invalid import policy for %s: %s" own target e);
              enclosures :=
                {
                  Objfile.enc_name = Printf.sprintf "%s_init_%s" own target;
                  enc_policy = policy;
                  enc_closure = Printf.sprintf "%s_init_%s_body" own target;
                  enc_deps = [ target ];
                }
                :: !enclosures)
            p.Ast.p_import_policies;
          let fn_sizes =
            List.map (fun f -> (f.Ast.fn_name, block_size f.Ast.fn_body)) p.Ast.p_funcs
          in
          let closure_syms =
            List.map
              (fun (e : Objfile.enclosure_decl) -> (e.Objfile.enc_closure, 64))
              !enclosures
          in
          Runtime.package own ~imports:p.Ast.p_imports
            ~functions:(fn_sizes @ closure_syms)
            ~globals:(List.map global_slot p.Ast.p_vars)
            ~constants:(List.map const_slot p.Ast.p_consts)
            ~enclosures:(List.rev !enclosures) ())
        prog
    in
    (* Entry point. *)
    (match find_pkg "main" with
    | None -> err "no main package"
    | Some mp ->
        if not (List.exists (fun f -> f.Ast.fn_name = "main") mp.Ast.p_funcs) then
          err "package main has no function main");
    (* Init plans: every package with an [init] function, dependencies
       first; a tagged import supplies the enclosure. *)
    let graph = Encl_pkg.Graph.create () in
    List.iter (fun p -> Encl_pkg.Graph.add_package graph p.Ast.p_name) prog;
    List.iter
      (fun p ->
        List.iter
          (fun i -> Encl_pkg.Graph.add_import graph ~importer:p.Ast.p_name ~imported:i)
          p.Ast.p_imports)
      prog;
    let topo =
      match Encl_pkg.Graph.topological_order graph with
      | Ok order -> order
      | Error cycle -> err "import cycle: %s" (String.concat " -> " cycle)
    in
    let enclosure_for target =
      List.find_map
        (fun p ->
          List.find_map
            (fun (t, _) ->
              if t = target then Some (Printf.sprintf "%s_init_%s" p.Ast.p_name target)
              else None)
            p.Ast.p_import_policies)
        prog
    in
    let inits =
      List.filter_map
        (fun name ->
          match find_pkg name with
          | Some p when List.exists (fun f -> f.Ast.fn_name = "init") p.Ast.p_funcs ->
              Some { ip_pkg = name; ip_enclosure = enclosure_for name }
          | _ -> None)
        topo
    in
    Ok { c_prog = prog; c_pkgdefs = pkgdefs; c_consts = consts; c_inits = inits }
  with
  | Compile_error m -> Error m
  | Invalid_argument m -> Error m
