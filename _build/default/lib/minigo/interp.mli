(** The mini-Go evaluator.

    Function bodies execute against the Go-like runtime: every
    cross-package call performs the instruction-fetch check, [alloc]
    lands in the current package's arena (tagged mallocgc), package
    variables and constants live in simulated guest memory (so reading
    them from an enclosure without the right view faults), and calling a
    closure produced by a [with] expression enters its enclosure. *)

type value =
  | VUnit
  | VInt of int
  | VBool of bool
  | VStr of string
  | VBuf of Encl_golike.Gbuf.t
  | VClosure of Ast.enclosure * string * scope
      (** the node, its owner package, and the captured environment
          (free variables are shared by reference, as in Go) *)
  | VChan of value Encl_golike.Channel.t

and scope = (string, value) Hashtbl.t

val value_to_string : value -> string

type ctx

exception Runtime_error of string

val create : Encl_golike.Runtime.t -> Compile.compiled -> ctx
val runtime : ctx -> Encl_golike.Runtime.t

val call_function :
  ctx -> pkg:string -> fn:string -> value list -> value
(** Invoke a declared function (checks arity; performs the fetch check).
    Raises {!Runtime_error}, {!Cpu.Fault}, or
    {!Encl_litterbox.Litterbox.Fault}. *)

val output : ctx -> string
(** Everything [print] produced so far. *)
