(** Abstract syntax of the mini-Go language. *)

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Var of string
  | Binop of binop * expr * expr
  | Call of string * expr list  (** local function, builtin, or closure var *)
  | Pkg_call of string * string * expr list  (** [pkg.fn(args)] *)
  | Enclosure of enclosure
      (** [with "policy" func() { body }] — evaluates to a closure
          permanently bound to an execution environment (paper §2.2) *)

and stmt =
  | Define of string * expr  (** [x := e] *)
  | Assign of string * expr  (** [x = e] *)
  | Expr of expr
  | Return of expr option
  | If of expr * block * block option
  | For of expr * block  (** [for cond { ... }] *)
  | Go of expr  (** [go f()] — spawn a goroutine (inherits the environment) *)

and enclosure = {
  policy : string;
  body : block;
  mutable e_id : string option;
      (** unique enclosure name, assigned by the compiler *)
}

and block = stmt list

type fndecl = { fn_name : string; fn_params : string list; fn_body : block }

type vardecl = { v_name : string; v_init : expr }

type pkg = {
  p_name : string;
  p_imports : string list;
  p_import_policies : (string * string) list;
      (** [import foo with "policy"] tags: the imported package's [init]
          function runs inside an enclosure with that policy (paper
          §5.1) *)
  p_consts : vardecl list;
  p_vars : vardecl list;
  p_funcs : fndecl list;
}

type program = pkg list

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
