(** The mini-Go "compiler": semantic checks, enclosure-dependency
    inference, and code-object emission (paper §5.1).

    Like the paper's Go patch, it
    - validates every enclosure policy literal at compile time;
    - "relies on the type checker to identify and register an enclosure's
      direct dependencies": the packages a closure body actually invokes
      (plus its own package when it calls local helpers);
    - emits one code object per package, with each enclosure closure as a
      distinct function symbol the linker isolates in its own section. *)

type const_info = { ci_len : int; ci_is_str : bool }

type init_plan = {
  ip_pkg : string;  (** package whose [init] runs *)
  ip_enclosure : string option;
      (** enclosure to run it in, when an importer tagged the import with
          a policy (paper §5.1). The same synthesized enclosure also wraps
          {e every} call the importer makes into the package — the
          compiler-automated program-wide policy of paper §3.2. *)
}

type compiled = {
  c_prog : Ast.program;  (** enclosure nodes now carry their [e_id] *)
  c_pkgdefs : Encl_golike.Runtime.pkgdef list;
  c_consts : (string * string, const_info) Hashtbl.t;  (** (pkg, name) *)
  c_inits : init_plan list;  (** dependency order *)
}

val compile : Ast.program -> (compiled, string) result
(** Fails with a human-readable message on: unknown imports, [Pkg_call]
    to a package that is not imported or a function that does not exist,
    duplicate definitions, invalid policy literals, global initializers
    that are not literals, or a missing [main.main]. *)

val enclosure_deps : own:string -> Ast.block -> string list
(** The dependency-inference rule, exposed for tests: packages invoked by
    the closure body (not counting nested enclosures' bodies), plus
    [own] when the body calls package-local functions. *)
