(** Recursive-descent parser for the mini-Go language.

    Grammar (one package per source file; a program is several files):
    {v
      file    ::= 'package' IDENT import* decl*
      import  ::= 'import' IDENT
      decl    ::= 'var' IDENT '=' expr
                | 'const' IDENT '=' expr
                | 'func' IDENT '(' params ')' block
      block   ::= '{' stmt* '}'
      stmt    ::= IDENT ':=' expr | IDENT '=' expr | 'return' [expr]
                | 'if' expr block ['else' block] | 'for' expr block | expr
      expr    ::= comparison (('=='|'!='|'<'|'<='|'>'|'>=') comparison)?
      ...
      primary ::= INT | STRING | 'true' | 'false' | IDENT
                | IDENT '(' args ')' | IDENT '.' IDENT '(' args ')'
                | 'with' STRING 'func' '(' ')' block
                | '(' expr ')'
    v} *)

exception Parse_error of { line : int; message : string }

val parse_file : string -> Ast.pkg
(** Parse one source file (one package). Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)

val parse_program : string list -> (Ast.program, string) result
(** Parse several files and check for duplicate package names. *)
