module Runtime = Encl_golike.Runtime
module Lb = Encl_litterbox.Litterbox

type t = { ctx : Interp.ctx }

let build ?(config = Runtime.with_backend Lb.Mpk) ~sources () =
  match Parser.parse_program sources with
  | Error e -> Error e
  | Ok prog -> (
      match Compile.compile prog with
      | Error e -> Error e
      | Ok compiled -> (
          match
            Runtime.boot config ~packages:compiled.Compile.c_pkgdefs ~entry:"main"
          with
          | Error e -> Error e
          | Ok rt -> (
              let ctx = Interp.create rt compiled in
              (* Package init functions, dependencies first; tagged
                 imports run their init inside the synthesized
                 enclosure. *)
              let run_init (plan : Compile.init_plan) =
                let call () =
                  ignore (Interp.call_function ctx ~pkg:plan.Compile.ip_pkg ~fn:"init" [])
                in
                match plan.Compile.ip_enclosure with
                | None -> call ()
                | Some enc -> Runtime.with_enclosure rt enc call
              in
              match List.iter run_init compiled.Compile.c_inits with
              | () -> Ok { ctx }
              | exception Interp.Runtime_error m ->
                  Error ("init failed: " ^ m)
              | exception Lb.Fault { reason; enclosure } ->
                  Error
                    (Printf.sprintf "init faulted%s: %s"
                       (match enclosure with Some e -> " in " ^ e | None -> "")
                       reason)
              | exception Cpu.Fault fault ->
                  Error (Format.asprintf "init faulted: %a" Cpu.pp_fault fault))))

let protected t f =
  match Runtime.lb (Interp.runtime t.ctx) with
  | Some lb -> (
      match Lb.run_protected lb f with
      | Ok v -> Ok v
      | Error e -> Error e
      | exception Interp.Runtime_error m -> Error ("runtime error: " ^ m))
  | None -> (
      match f () with
      | v -> Ok v
      | exception Interp.Runtime_error m -> Error ("runtime error: " ^ m)
      | exception Cpu.Fault fault -> Error (Format.asprintf "%a" Cpu.pp_fault fault))

let run_main t =
  let rt = Interp.runtime t.ctx in
  match
    protected t (fun () ->
        Runtime.run_main rt (fun () ->
            ignore (Interp.call_function t.ctx ~pkg:"main" ~fn:"main" [])))
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let call t ~pkg ~fn args = protected t (fun () -> Interp.call_function t.ctx ~pkg ~fn args)

let output t = Interp.output t.ctx
let runtime t = Interp.runtime t.ctx

let enclosure_names t =
  match Runtime.lb (Interp.runtime t.ctx) with
  | Some lb -> Lb.enclosure_names lb
  | None -> []
