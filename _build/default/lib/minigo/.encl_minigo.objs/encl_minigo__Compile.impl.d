lib/minigo/compile.ml: Ast Bytes Encl_elf Encl_enclosure Encl_golike Encl_pkg Hashtbl Int64 List Option Printf String
