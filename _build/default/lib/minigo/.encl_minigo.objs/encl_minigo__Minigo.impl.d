lib/minigo/minigo.ml: Compile Cpu Encl_golike Encl_litterbox Format Interp List Parser Printf
