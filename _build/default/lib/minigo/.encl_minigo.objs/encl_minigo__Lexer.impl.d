lib/minigo/lexer.ml: Buffer List Printf String
