lib/minigo/ast.mli: Format
