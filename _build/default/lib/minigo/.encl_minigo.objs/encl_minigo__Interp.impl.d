lib/minigo/interp.ml: Ast Buffer Bytes Compile Encl_golike Encl_kernel Encl_litterbox Hashtbl Int64 List Option Printf String
