lib/minigo/ast.ml: Format
