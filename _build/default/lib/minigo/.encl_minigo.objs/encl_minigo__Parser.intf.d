lib/minigo/parser.mli: Ast
