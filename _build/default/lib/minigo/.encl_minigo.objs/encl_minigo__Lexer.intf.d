lib/minigo/lexer.mli:
