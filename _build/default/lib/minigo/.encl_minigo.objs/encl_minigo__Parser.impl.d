lib/minigo/parser.ml: Ast Lexer List Printf
