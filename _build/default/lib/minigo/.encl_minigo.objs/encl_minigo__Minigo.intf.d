lib/minigo/minigo.mli: Encl_golike Interp
