lib/minigo/interp.mli: Ast Compile Encl_golike Hashtbl
