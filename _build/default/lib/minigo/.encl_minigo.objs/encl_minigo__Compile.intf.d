lib/minigo/compile.mli: Ast Encl_golike Hashtbl
