open Lexer

exception Parse_error of { line : int; message : string }

type state = { mutable toks : located list }

let peek st = match st.toks with t :: _ -> t | [] -> assert false

let error st message = raise (Parse_error { line = (peek st).line; message })

let advance st =
  match st.toks with
  | _ :: ((_ :: _) as rest) -> st.toks <- rest
  | _ -> ()

let expect st tok =
  let t = peek st in
  if t.tok = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s, found %s" (token_name tok) (token_name t.tok))

let expect_ident st =
  match (peek st).tok with
  | IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected an identifier, found %s" (token_name t))

let expect_string st =
  match (peek st).tok with
  | STRING s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected a string literal, found %s" (token_name t))

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)

let rec parse_expr st = parse_compare st

and parse_compare st =
  let lhs = parse_additive st in
  match (peek st).tok with
  | EQ -> advance st; Ast.Binop (Ast.Eq, lhs, parse_additive st)
  | NE -> advance st; Ast.Binop (Ast.Ne, lhs, parse_additive st)
  | LT -> advance st; Ast.Binop (Ast.Lt, lhs, parse_additive st)
  | LE -> advance st; Ast.Binop (Ast.Le, lhs, parse_additive st)
  | GT -> advance st; Ast.Binop (Ast.Gt, lhs, parse_additive st)
  | GE -> advance st; Ast.Binop (Ast.Ge, lhs, parse_additive st)
  | _ -> lhs

and parse_additive st =
  let rec loop lhs =
    match (peek st).tok with
    | PLUS -> advance st; loop (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | MINUS -> advance st; loop (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match (peek st).tok with
    | STAR -> advance st; loop (Ast.Binop (Ast.Mul, lhs, parse_primary st))
    | SLASH -> advance st; loop (Ast.Binop (Ast.Div, lhs, parse_primary st))
    | PERCENT -> advance st; loop (Ast.Binop (Ast.Mod, lhs, parse_primary st))
    | _ -> lhs
  in
  loop (parse_primary st)

and parse_args st =
  expect st LPAREN;
  if (peek st).tok = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let arg = parse_expr st in
      match (peek st).tok with
      | COMMA ->
          advance st;
          loop (arg :: acc)
      | RPAREN ->
          advance st;
          List.rev (arg :: acc)
      | t -> error st (Printf.sprintf "expected ',' or ')', found %s" (token_name t))
    in
    loop []
  end

and parse_primary st =
  match (peek st).tok with
  | INT n ->
      advance st;
      Ast.Int n
  | STRING s ->
      advance st;
      Ast.Str s
  | KW_TRUE ->
      advance st;
      Ast.Bool true
  | KW_FALSE ->
      advance st;
      Ast.Bool false
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | KW_WITH ->
      (* with "policy" func() { ... }  (paper §2.2) *)
      advance st;
      let policy = expect_string st in
      expect st KW_FUNC;
      expect st LPAREN;
      expect st RPAREN;
      let body = parse_block st in
      Ast.Enclosure { Ast.policy; body; e_id = None }
  | IDENT name -> (
      advance st;
      match (peek st).tok with
      | LPAREN -> Ast.Call (name, parse_args st)
      | DOT ->
          advance st;
          let fn = expect_ident st in
          Ast.Pkg_call (name, fn, parse_args st)
      | _ -> Ast.Var name)
  | t -> error st (Printf.sprintf "expected an expression, found %s" (token_name t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and parse_stmt st =
  match (peek st).tok with
  | KW_RETURN -> (
      advance st;
      match (peek st).tok with
      | RBRACE -> Ast.Return None
      | _ -> Ast.Return (Some (parse_expr st)))
  | KW_IF ->
      advance st;
      let cond = parse_expr st in
      let then_ = parse_block st in
      if (peek st).tok = KW_ELSE then begin
        advance st;
        let else_ = parse_block st in
        Ast.If (cond, then_, Some else_)
      end
      else Ast.If (cond, then_, None)
  | KW_FOR ->
      advance st;
      let cond = parse_expr st in
      let body = parse_block st in
      Ast.For (cond, body)
  | KW_GO -> (
      advance st;
      match parse_expr st with
      | (Ast.Call _ | Ast.Pkg_call _) as call -> Ast.Go call
      | _ -> error st "'go' must be followed by a function call")
  | IDENT name -> (
      (* Lookahead for := / = ; otherwise it is an expression statement. *)
      match st.toks with
      | _ :: { tok = DEFINE; _ } :: _ ->
          advance st;
          advance st;
          Ast.Define (name, parse_expr st)
      | _ :: { tok = ASSIGN; _ } :: _ ->
          advance st;
          advance st;
          Ast.Assign (name, parse_expr st)
      | _ -> Ast.Expr (parse_expr st))
  | _ -> Ast.Expr (parse_expr st)

and parse_block st =
  expect st LBRACE;
  let rec loop acc =
    if (peek st).tok = RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

let parse_file src =
  let st = { toks = Lexer.tokenize src } in
  expect st KW_PACKAGE;
  let p_name = expect_ident st in
  let imports = ref [] in
  let import_policies = ref [] in
  let consts = ref [] in
  let vars = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match (peek st).tok with
    | EOF -> ()
    | KW_IMPORT ->
        advance st;
        let name = expect_ident st in
        imports := name :: !imports;
        (if (peek st).tok = KW_WITH then begin
           advance st;
           let policy = expect_string st in
           import_policies := (name, policy) :: !import_policies
         end);
        loop ()
    | KW_CONST ->
        advance st;
        let v_name = expect_ident st in
        expect st ASSIGN;
        consts := { Ast.v_name; v_init = parse_expr st } :: !consts;
        loop ()
    | KW_VAR ->
        advance st;
        let v_name = expect_ident st in
        expect st ASSIGN;
        vars := { Ast.v_name; v_init = parse_expr st } :: !vars;
        loop ()
    | KW_FUNC ->
        advance st;
        let fn_name = expect_ident st in
        expect st LPAREN;
        let rec params acc =
          match (peek st).tok with
          | RPAREN ->
              advance st;
              List.rev acc
          | IDENT p -> (
              advance st;
              match (peek st).tok with
              | COMMA ->
                  advance st;
                  params (p :: acc)
              | RPAREN ->
                  advance st;
                  List.rev (p :: acc)
              | t ->
                  error st (Printf.sprintf "expected ',' or ')', found %s" (token_name t)))
          | t -> error st (Printf.sprintf "expected a parameter, found %s" (token_name t))
        in
        let fn_params = params [] in
        let fn_body = parse_block st in
        funcs := { Ast.fn_name; fn_params; fn_body } :: !funcs;
        loop ()
    | t ->
        error st
          (Printf.sprintf "expected 'import', 'var', 'const' or 'func', found %s"
             (token_name t))
  in
  loop ();
  {
    Ast.p_name;
    p_imports = List.rev !imports;
    p_import_policies = List.rev !import_policies;
    p_consts = List.rev !consts;
    p_vars = List.rev !vars;
    p_funcs = List.rev !funcs;
  }

let parse_program files =
  match List.map parse_file files with
  | pkgs -> (
      let names = List.map (fun p -> p.Ast.p_name) pkgs in
      let dup =
        List.find_opt
          (fun n -> List.length (List.filter (( = ) n) names) > 1)
          names
      in
      match dup with
      | Some d -> Error (Printf.sprintf "duplicate package %s" d)
      | None -> Ok pkgs)
  | exception Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "line %d: lexical error: %s" line message)
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "line %d: syntax error: %s" line message)
