type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | KW_PACKAGE
  | KW_IMPORT
  | KW_FUNC
  | KW_WITH
  | KW_VAR
  | KW_CONST
  | KW_RETURN
  | KW_IF
  | KW_ELSE
  | KW_FOR
  | KW_GO
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | DEFINE
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | KW_PACKAGE -> "'package'"
  | KW_IMPORT -> "'import'"
  | KW_FUNC -> "'func'"
  | KW_WITH -> "'with'"
  | KW_VAR -> "'var'"
  | KW_CONST -> "'const'"
  | KW_RETURN -> "'return'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_FOR -> "'for'"
  | KW_GO -> "'go'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | DEFINE -> "':='"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | EOF -> "end of input"

type located = { tok : token; line : int }

exception Lex_error of { line : int; message : string }

let keyword_of_string = function
  | "package" -> Some KW_PACKAGE
  | "import" -> Some KW_IMPORT
  | "func" -> Some KW_FUNC
  | "with" -> Some KW_WITH
  | "var" -> Some KW_VAR
  | "const" -> Some KW_CONST
  | "return" -> Some KW_RETURN
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "for" -> Some KW_FOR
  | "go" -> Some KW_GO
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let error message = raise (Lex_error { line = !line; message }) in
  let rec go i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | '\n' ->
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip i)
      | '(' -> emit LPAREN; go (i + 1)
      | ')' -> emit RPAREN; go (i + 1)
      | '{' -> emit LBRACE; go (i + 1)
      | '}' -> emit RBRACE; go (i + 1)
      | ',' -> emit COMMA; go (i + 1)
      | '.' -> emit DOT; go (i + 1)
      | '+' -> emit PLUS; go (i + 1)
      | '-' -> emit MINUS; go (i + 1)
      | '*' -> emit STAR; go (i + 1)
      | '/' -> emit SLASH; go (i + 1)
      | '%' -> emit PERCENT; go (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> emit DEFINE; go (i + 2)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit EQ; go (i + 2)
      | '=' -> emit ASSIGN; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit NE; go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; go (i + 2)
      | '<' -> emit LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; go (i + 2)
      | '>' -> emit GT; go (i + 1)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then error "unterminated string literal"
            else
              match src.[j] with
              | '"' -> j + 1
              | '\n' -> error "newline in string literal"
              | '\\' ->
                  if j + 1 >= n then error "dangling escape";
                  let c =
                    match src.[j + 1] with
                    | 'n' -> '\n'
                    | 't' -> '\t'
                    | '\\' -> '\\'
                    | '"' -> '"'
                    | c -> error (Printf.sprintf "unknown escape \\%c" c)
                  in
                  Buffer.add_char buf c;
                  str (j + 2)
              | c ->
                  Buffer.add_char buf c;
                  str (j + 1)
          in
          let next = str (i + 1) in
          emit (STRING (Buffer.contents buf));
          go next
      | c when is_digit c ->
          let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
          let stop = num i in
          emit (INT (int_of_string (String.sub src i (stop - i))));
          go stop
      | c when is_ident_start c ->
          let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
          let stop = ident i in
          let word = String.sub src i (stop - i) in
          (match keyword_of_string word with
          | Some kw -> emit kw
          | None -> emit (IDENT word));
          go stop
      | c -> error (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !toks
