(** Mini-Go: a small Go-like language with the paper's enclosure syntax.

    The full §5.1 pipeline: parse (the [with] keyword, §2.2) →
    compile (policy validation, enclosure-dependency inference via the
    "type checker", one code object per package) → link (closure
    isolation, [.pkgs]/[.rstrct]/[.verif]) → run on the Go-like runtime
    under a LitterBox backend.

    {[
      let src = {|
        package main
        import libFx
        import secrets

        func main() {
          img := secrets.load()
          rcl := with "secrets:R; sys=none" func() {
            return libFx.invert(img)
          }
          print(rcl())
        }
      |}
    ]} *)

type t

val build :
  ?config:Encl_golike.Runtime.config ->
  sources:string list ->
  unit ->
  (t, string) result
(** Parse, compile, link, and boot the program. Default configuration is
    LB_MPK. Every error (lexical, syntactic, semantic, policy, link) is
    reported as a message. *)

val run_main : t -> (unit, string) result
(** Run [main.main()]. Enclosure faults are reported as [Error]. *)

val call : t -> pkg:string -> fn:string -> Interp.value list -> (Interp.value, string) result
(** Invoke any declared function (tests use this). *)

val output : t -> string
(** Accumulated [print] output. *)

val runtime : t -> Encl_golike.Runtime.t
val enclosure_names : t -> string list
(** The compiler-assigned enclosure identifiers, in declaration order. *)
