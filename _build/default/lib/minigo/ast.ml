type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Var of string
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Pkg_call of string * string * expr list
  | Enclosure of enclosure

and stmt =
  | Define of string * expr
  | Assign of string * expr
  | Expr of expr
  | Return of expr option
  | If of expr * block * block option
  | For of expr * block
  | Go of expr

and enclosure = {
  policy : string;
  body : block;
  mutable e_id : string option;
      (** unique enclosure name, assigned by the compiler *)
}

and block = stmt list

type fndecl = { fn_name : string; fn_params : string list; fn_body : block }

type vardecl = { v_name : string; v_init : expr }

type pkg = {
  p_name : string;
  p_imports : string list;
  p_import_policies : (string * string) list;
      (** [import foo with "policy"] tags: the imported package's [init]
          function runs inside an enclosure with that policy (paper
          §5.1) *)
  p_consts : vardecl list;
  p_vars : vardecl list;
  p_funcs : fndecl list;
}

type program = pkg list

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b
  | Var x -> Format.pp_print_string ppf x
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Call (f, args) -> Format.fprintf ppf "%s(%a)" f pp_args args
  | Pkg_call (p, f, args) -> Format.fprintf ppf "%s.%s(%a)" p f pp_args args
  | Enclosure { policy; _ } ->
      Format.fprintf ppf "with %S func() {...}" policy

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

and pp_stmt ppf = function
  | Define (x, e) -> Format.fprintf ppf "%s := %a" x pp_expr e
  | Assign (x, e) -> Format.fprintf ppf "%s = %a" x pp_expr e
  | Expr e -> pp_expr ppf e
  | Return None -> Format.pp_print_string ppf "return"
  | Return (Some e) -> Format.fprintf ppf "return %a" pp_expr e
  | If (c, _, _) -> Format.fprintf ppf "if %a {...}" pp_expr c
  | For (c, _) -> Format.fprintf ppf "for %a {...}" pp_expr c
  | Go e -> Format.fprintf ppf "go %a" pp_expr e
