lib/util/ids.mli:
