lib/util/bitops.mli:
