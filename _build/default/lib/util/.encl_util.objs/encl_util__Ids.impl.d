lib/util/ids.ml:
