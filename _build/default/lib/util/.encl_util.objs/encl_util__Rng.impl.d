lib/util/rng.ml: Char Int64
