lib/util/bitops.ml: Int32
