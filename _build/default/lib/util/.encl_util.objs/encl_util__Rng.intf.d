lib/util/rng.mli:
