type t = { mutable counter : int }

let make () = { counter = 0 }

let next g =
  let id = g.counter in
  g.counter <- id + 1;
  id

let peek g = g.counter
let reset g = g.counter <- 0
