(** Monotonic integer identifier generators.

    Each generator hands out distinct non-negative integers starting at 0.
    Generators are independent: two [make] calls share no state. *)

type t
(** A generator of fresh identifiers. *)

val make : unit -> t
(** [make ()] is a fresh generator whose first identifier is [0]. *)

val next : t -> int
(** [next g] returns the next identifier and advances [g]. *)

val peek : t -> int
(** [peek g] is the identifier that the next [next g] will return,
    without advancing [g]. *)

val reset : t -> unit
(** [reset g] rewinds [g] so that the next identifier is [0] again.
    Only meant for tests; never reset a generator whose identifiers
    are still live. *)
