(** Deterministic pseudo-random numbers (splitmix64).

    Workload generators must be reproducible across runs, so they use this
    seeded generator instead of [Stdlib.Random]. *)

type t
(** Generator state. *)

val make : seed:int64 -> t
(** [make ~seed] is a generator whose whole stream is a function of [seed]. *)

val next64 : t -> int64
(** [next64 t] is the next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val byte : t -> char
(** [byte t] is a uniform byte. *)

val split : t -> t
(** [split t] derives an independent generator from [t]'s stream. *)
