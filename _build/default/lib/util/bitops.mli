(** Small bit-manipulation helpers shared by the simulated hardware. *)

val align_up : int -> int -> int
(** [align_up v a] rounds [v] up to the next multiple of [a].
    [a] must be a power of two. *)

val align_down : int -> int -> int
(** [align_down v a] rounds [v] down to a multiple of [a].
    [a] must be a power of two. *)

val is_aligned : int -> int -> bool
(** [is_aligned v a] is [true] iff [v] is a multiple of [a]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two v] for strictly positive [v]. *)

val get_bits : int32 -> lo:int -> width:int -> int
(** [get_bits v ~lo ~width] extracts bits [lo .. lo+width-1] of [v]. *)

val set_bits : int32 -> lo:int -> width:int -> int -> int32
(** [set_bits v ~lo ~width x] overwrites bits [lo .. lo+width-1] with [x]. *)
