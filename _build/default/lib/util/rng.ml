type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make ~seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is non-negative as an OCaml int. *)
  let raw = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (raw /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L
let byte t = Char.chr (int t 256)
let split t = { state = next64 t }
