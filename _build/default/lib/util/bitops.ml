let is_power_of_two v = v > 0 && v land (v - 1) = 0

let align_up v a =
  assert (is_power_of_two a);
  (v + a - 1) land lnot (a - 1)

let align_down v a =
  assert (is_power_of_two a);
  v land lnot (a - 1)

let is_aligned v a = v land (a - 1) = 0

let get_bits v ~lo ~width =
  let mask = Int32.of_int ((1 lsl width) - 1) in
  Int32.to_int (Int32.logand (Int32.shift_right_logical v lo) mask)

let set_bits v ~lo ~width x =
  let mask = Int32.shift_left (Int32.of_int ((1 lsl width) - 1)) lo in
  let cleared = Int32.logand v (Int32.lognot mask) in
  let inserted = Int32.logand (Int32.shift_left (Int32.of_int x) lo) mask in
  Int32.logor cleared inserted
