module Sysno = Encl_kernel.Sysno

type filter_atom = Cat of Sysno.category | Connect_to of int list

type sys_filter = Sys_none | Sys_all | Sys_atoms of filter_atom list

type t = { modifiers : (string * Types.access) list; filter : sys_filter }

let default = { modifiers = []; filter = Sys_none }

let parse_ip s =
  match Encl_kernel.Net.addr_of_string (String.trim s) with
  | ip -> Ok ip
  | exception Invalid_argument _ -> Error (Printf.sprintf "bad IP address %S" s)

let parse_atom tok =
  let tok = String.trim tok in
  if String.length tok > 8 && String.sub tok 0 8 = "connect(" then
    if tok.[String.length tok - 1] <> ')' then
      Error (Printf.sprintf "unterminated connect(...) in %S" tok)
    else begin
      let inner = String.sub tok 8 (String.length tok - 9) in
      let parts = String.split_on_char '|' inner in
      let rec collect acc = function
        | [] -> Ok (Connect_to (List.rev acc))
        | p :: rest -> (
            match parse_ip p with
            | Ok ip -> collect (ip :: acc) rest
            | Error e -> Error e)
      in
      if parts = [] || inner = "" then Error "empty connect(...) list"
      else collect [] parts
    end
  else
    match Sysno.category_of_name tok with
    | Some c -> Ok (Cat c)
    | None -> Error (Printf.sprintf "unknown system-call category %S" tok)

let parse_filter spec =
  match String.trim spec with
  | "none" -> Ok Sys_none
  | "all" -> Ok Sys_all
  | "" -> Error "empty system-call filter after 'sys='"
  | spec ->
      let rec collect acc = function
        | [] -> Ok (Sys_atoms (List.rev acc))
        | tok :: rest -> (
            match parse_atom tok with
            | Ok a -> collect (a :: acc) rest
            | Error e -> Error e)
      in
      collect [] (String.split_on_char ',' spec)

let parse_modifiers spec =
  let toks =
    String.split_on_char ' ' spec |> List.filter (fun s -> String.trim s <> "")
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match String.index_opt tok ':' with
        | None -> Error (Printf.sprintf "malformed memory modifier %S (expected pkg:RIGHT)" tok)
        | Some i -> (
            let pkg = String.sub tok 0 i in
            let right = String.sub tok (i + 1) (String.length tok - i - 1) in
            if pkg = "" then Error (Printf.sprintf "empty package name in %S" tok)
            else
              match Types.access_of_string right with
              | None -> Error (Printf.sprintf "unknown access right %S in %S" right tok)
              | Some a ->
                  if List.mem_assoc pkg acc then
                    Error (Printf.sprintf "duplicate modifier for package %s" pkg)
                  else collect ((pkg, a) :: acc) rest))
  in
  collect [] toks

let parse literal =
  let mem_part, sys_part =
    match String.index_opt literal ';' with
    | None -> (literal, None)
    | Some i ->
        ( String.sub literal 0 i,
          Some (String.sub literal (i + 1) (String.length literal - i - 1)) )
  in
  match parse_modifiers mem_part with
  | Error e -> Error e
  | Ok modifiers -> (
      match sys_part with
      | None -> Ok { modifiers; filter = Sys_none }
      | Some s -> (
          let s = String.trim s in
          let prefix = "sys=" in
          if String.length s < String.length prefix
             || String.sub s 0 (String.length prefix) <> prefix then
            Error (Printf.sprintf "expected 'sys=...' after ';', got %S" s)
          else
            match parse_filter (String.sub s 4 (String.length s - 4)) with
            | Ok f -> Ok { modifiers; filter = f }
            | Error e -> Error e))

let atom_to_string = function
  | Cat c -> Sysno.category_name c
  | Connect_to ips ->
      Printf.sprintf "connect(%s)"
        (String.concat "|" (List.map Encl_kernel.Net.string_of_addr ips))

let filter_to_string = function
  | Sys_none -> "none"
  | Sys_all -> "all"
  | Sys_atoms atoms -> String.concat "," (List.map atom_to_string atoms)

let to_string t =
  let mods =
    String.concat " "
      (List.map (fun (p, a) -> Printf.sprintf "%s:%s" p (Types.access_name a)) t.modifiers)
  in
  mods ^ "; sys=" ^ filter_to_string t.filter

let validate_packages t ~known =
  let rec check = function
    | [] -> Ok ()
    | (pkg, _) :: rest ->
        if known pkg then check rest
        else Error (Printf.sprintf "policy names unknown package %s" pkg)
  in
  check t.modifiers

let filter_allows_cat f cat =
  match f with
  | Sys_none -> false
  | Sys_all -> true
  | Sys_atoms atoms ->
      List.exists (function Cat c -> c = cat | Connect_to _ -> false) atoms

let filter_allows_connect f ~ip =
  match f with
  | Sys_none -> false
  | Sys_all -> true
  | Sys_atoms atoms ->
      (* A connect(...) list overrides the net category for connect(2):
         "extend the sysfilter categories to only allow connect system
         calls to a list of pre-defined IP addresses" (paper §6.5). *)
      let lists =
        List.filter_map
          (function Connect_to ips -> Some ips | Cat _ -> None)
          atoms
      in
      if lists <> [] then List.exists (fun ips -> List.mem ip ips) lists
      else
        List.exists
          (function Cat c -> c = Sysno.Cat_net | Connect_to _ -> false)
          atoms

(* f <= g: every call f permits, g permits too. *)
let filter_leq f g =
  match (f, g) with
  | Sys_none, _ -> true
  | _, Sys_all -> true
  | Sys_all, (Sys_none | Sys_atoms _) -> false
  | Sys_atoms atoms, _ ->
      let has_list =
        List.exists (function Connect_to _ -> true | Cat _ -> false) atoms
      in
      let unrestricted_connect =
        (not has_list)
        && List.exists (function Cat c -> c = Sysno.Cat_net | Connect_to _ -> false) atoms
      in
      List.for_all
        (function
          | Cat c -> filter_allows_cat g c
          | Connect_to ips -> List.for_all (fun ip -> filter_allows_connect g ~ip) ips)
        atoms
      (* [f] permitting connect to arbitrary addresses requires the same
         of [g]; probe with an address no list can contain. *)
      && (not unrestricted_connect || filter_allows_connect g ~ip:(-1))

let pp ppf t = Format.pp_print_string ppf (to_string t)
