type t = { arr : string list array; index : (string, int) Hashtbl.t }

let compute ~packages ~views ~pinned =
  let vector pkg = List.map (fun v -> View.access v pkg) views in
  let groups : (Types.access list, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun pkg ->
      if not (List.mem pkg pinned) then begin
        let key = vector pkg in
        match Hashtbl.find_opt groups key with
        | Some members -> members := pkg :: !members
        | None ->
            let members = ref [ pkg ] in
            Hashtbl.replace groups key members;
            order := key :: !order
      end)
    packages;
  let grouped =
    List.rev_map (fun key -> List.rev !(Hashtbl.find groups key)) !order
  in
  let singletons =
    List.filter_map
      (fun p -> if List.mem p packages then Some [ p ] else None)
      pinned
  in
  let arr = Array.of_list (grouped @ singletons) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i members -> List.iter (fun p -> Hashtbl.replace index p i) members) arr;
  { arr; index }

let count t = Array.length t.arr
let members t i = t.arr.(i)
let cluster_of t pkg = Hashtbl.find_opt t.index pkg
let clusters t = Array.copy t.arr

let pp ppf t =
  Format.fprintf ppf "@[<v>%d meta-packages:" (count t);
  Array.iteri
    (fun i members ->
      Format.fprintf ppf "@,  #%d: %s" i (String.concat ", " members))
    t.arr;
  Format.fprintf ppf "@]"
