module Smap = Map.Make (String)

type t = Types.access Smap.t

let empty = Smap.empty

let of_list l = List.fold_left (fun m (p, a) -> Smap.add p a m) Smap.empty l
let to_list t = Smap.bindings t
let access t pkg = Option.value ~default:Types.U (Smap.find_opt pkg t)
let set t pkg a = Smap.add pkg a t

let user_pkg = "litterbox.user"

let compute ~graph ~deps ~policy =
  match List.find_opt (fun d -> not (Encl_pkg.Graph.mem graph d)) deps with
  | Some d -> Error (Printf.sprintf "enclosure dependency %s is not a linked package" d)
  | None -> (
    match
      Policy.validate_packages policy ~known:(Encl_pkg.Graph.mem graph)
    with
    | Error e -> Error e
    | Ok () ->
        let base =
          List.fold_left
            (fun m p ->
              List.fold_left
                (fun m q -> Smap.add q Types.RWX m)
                (Smap.add p Types.RWX m)
                (Encl_pkg.Graph.natural_deps graph p))
            Smap.empty deps
        in
        let base = Smap.add user_pkg Types.RWX base in
        let final =
          List.fold_left
            (fun m (p, a) -> Smap.add p a m)
            base policy.Policy.modifiers
        in
        (* The user package must stay reachable or no switch could ever
           return (paper §5.3: available in all execution environments). *)
        let final =
          if access final user_pkg = Types.U then Smap.add user_pkg Types.R final
          else final
        in
        Ok final)

let subset a b =
  (* Every right in [a] must be <= the right in [b]; packages absent from
     [a] are U, which is <= anything. *)
  Smap.for_all (fun pkg ra -> Types.access_leq ra (access b pkg)) a

let equal a b =
  let norm m = Smap.filter (fun _ a -> a <> Types.U) m in
  Smap.equal ( = ) (norm a) (norm b)

let restrict_to a b =
  Smap.merge
    (fun _ ra rb ->
      match (ra, rb) with
      | Some ra, Some rb -> Some (Types.access_meet ra rb)
      | Some _, None | None, Some _ -> Some Types.U
      | None, None -> None)
    a b

let pp ppf t =
  Format.fprintf ppf "@[<h>";
  List.iter
    (fun (p, a) ->
      if a <> Types.U then Format.fprintf ppf "%s:%a " p Types.pp_access a)
    (to_list t);
  Format.fprintf ppf "@]"
