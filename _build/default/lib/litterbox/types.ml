type access = U | R | RW | RWX

let access_name = function U -> "U" | R -> "R" | RW -> "RW" | RWX -> "RWX"

let access_of_string = function
  | "U" -> Some U
  | "R" -> Some R
  | "RW" -> Some RW
  | "RWX" -> Some RWX
  | _ -> None

let rank = function U -> 0 | R -> 1 | RW -> 2 | RWX -> 3
let access_leq a b = rank a <= rank b
let access_meet a b = if rank a <= rank b then a else b

let page_perms access (kind : Encl_elf.Section.kind) =
  match (access, kind) with
  | U, _ -> Pte.no_perms
  | _, (Rodata | Rstrct | Pkgs | Verif) -> { Pte.r = true; w = false; x = false }
  | RWX, Text -> { Pte.r = true; w = false; x = true }
  | (R | RW), Text -> { Pte.r = true; w = false; x = false }
  | R, (Data | Arena) -> { Pte.r = true; w = false; x = false }
  | (RW | RWX), (Data | Arena) -> { Pte.r = true; w = true; x = false }

let key_rights = function
  | U -> Mpk.No_access
  | R -> Mpk.Read_only
  | RW | RWX -> Mpk.Read_write

let pp_access ppf a = Format.pp_print_string ppf (access_name a)
