lib/litterbox/cluster.mli: Format View
