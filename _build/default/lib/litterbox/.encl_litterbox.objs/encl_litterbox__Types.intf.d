lib/litterbox/types.mli: Encl_elf Format Mpk Pte
