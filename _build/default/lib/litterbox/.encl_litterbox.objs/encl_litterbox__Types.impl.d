lib/litterbox/types.ml: Encl_elf Format Mpk Pte
