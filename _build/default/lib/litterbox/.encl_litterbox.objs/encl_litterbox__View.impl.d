lib/litterbox/view.ml: Encl_pkg Format List Map Option Policy Printf String Types
