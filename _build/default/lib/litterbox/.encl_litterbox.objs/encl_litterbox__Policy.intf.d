lib/litterbox/policy.mli: Encl_kernel Format Types
