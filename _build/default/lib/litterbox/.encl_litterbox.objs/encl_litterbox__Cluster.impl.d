lib/litterbox/cluster.ml: Array Format Hashtbl List String Types View
