lib/litterbox/loader.mli: Encl_elf Machine
