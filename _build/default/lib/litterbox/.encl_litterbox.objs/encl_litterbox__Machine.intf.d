lib/litterbox/machine.mli: Clock Costs Cpu Encl_kernel Pagetable Phys
