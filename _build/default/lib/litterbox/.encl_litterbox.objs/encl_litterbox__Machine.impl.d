lib/litterbox/machine.ml: Clock Costs Cpu Encl_elf Encl_kernel Fun Pagetable Phys
