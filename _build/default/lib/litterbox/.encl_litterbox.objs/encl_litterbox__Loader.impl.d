lib/litterbox/loader.ml: Bytes Encl_elf Encl_kernel List Machine Pagetable Phys Printf Pte
