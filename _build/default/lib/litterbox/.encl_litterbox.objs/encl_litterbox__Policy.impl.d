lib/litterbox/policy.ml: Encl_kernel Format List Printf String Types
