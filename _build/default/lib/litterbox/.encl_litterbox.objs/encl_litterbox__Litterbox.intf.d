lib/litterbox/litterbox.mli: Cluster Encl_elf Encl_kernel Encl_pkg Machine Mpk Types View
