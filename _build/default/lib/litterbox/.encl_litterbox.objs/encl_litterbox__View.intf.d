lib/litterbox/view.mli: Encl_pkg Format Policy Types
