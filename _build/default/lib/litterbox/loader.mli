(** Loads a linked image into the simulated machine: maps every section
    with its default permissions and copies initialised symbol contents. *)

val load : Machine.t -> Encl_elf.Image.t -> (unit, string) result
(** Fails when sections overlap (the layout assumption LitterBox verifies,
    paper §2.3). *)
