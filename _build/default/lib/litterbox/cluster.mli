(** Meta-package clustering (paper §5.3).

    "LitterBox performs an important optimization by clustering the
    packages across all memory views that have the same access rights.
    This clustering creates larger, logical meta-packages that can be
    efficiently managed" — and, for LB_MPK, lets the views fit in the 16
    MPK protection keys. *)

type t

val compute :
  packages:string list -> views:View.t list -> pinned:string list -> t
(** Group packages whose access-right vector across [views] is identical.
    [pinned] packages always get singleton clusters (e.g.
    ["litterbox.super"], which must never share a key). Unknown pinned
    names are ignored. *)

val count : t -> int
val members : t -> int -> string list
val cluster_of : t -> string -> int option
val clusters : t -> string list array

val pp : Format.formatter -> t -> unit
