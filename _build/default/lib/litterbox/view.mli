(** Memory views: per-package access rights for one execution environment.

    A view maps every program package to an access right; packages absent
    from the map are unmapped ([U]). The default view of an enclosure
    grants [RWX] on the owning package and its natural dependencies and
    unmaps everything else; user policies then restrict or extend it
    (paper §3.1). *)

type t

val empty : t
val of_list : (string * Types.access) list -> t
val to_list : t -> (string * Types.access) list
(** Sorted by package name; [U] entries are kept explicit only when they
    override a natural dependency. *)

val access : t -> string -> Types.access
(** [U] for packages not in the view. *)

val set : t -> string -> Types.access -> t

val compute :
  graph:Encl_pkg.Graph.t ->
  deps:string list ->
  policy:Policy.t ->
  (t, string) result
(** The complete memory view of an enclosure whose closure directly
    depends on [deps] (the packages the closure invokes, identified by
    the frontend's type checker): those packages and their transitive
    dependencies at [RWX], modifiers applied, and the ["litterbox.user"]
    package always accessible (its hooks must be callable from every
    environment, paper §5.3). Note that the {e declaring} package is not
    part of the view unless the closure depends on it — in Figure 1, [rcl]
    cannot access [main]. Fails when a modifier or dependency names a
    package unknown to the graph. *)

val subset : t -> t -> bool
(** [subset a b]: environment [a] is equal-or-more-restrictive than [b]
    for every package. *)

val equal : t -> t -> bool

val restrict_to : t -> t -> t
(** Pointwise meet (exposed for tests and ablations). *)

val pp : Format.formatter -> t -> unit
