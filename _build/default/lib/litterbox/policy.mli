(** Enclosure policy literals: parsing, printing, validation.

    Concrete syntax (the paper's §2.2 grammar, as a string literal so the
    frontend compiler can validate it at compile time):

    {v
      policy    ::= [memmods] [';' 'sys' '=' sysfilter]
      memmods   ::= (pkg ':' ('U'|'R'|'RW'|'RWX'))*        (space separated)
      sysfilter ::= 'none' | 'all' | atom (',' atom)*
      atom      ::= category                                (net, io, file, ...)
                  | 'connect(' ip ('|' ip)* ')'             (§6.5 extension)
    v}

    Examples: ["secrets:R; sys=none"], ["; sys=net,file"],
    ["os:U mylib:RWX"], [""] (the default policy). *)

type filter_atom =
  | Cat of Encl_kernel.Sysno.category
  | Connect_to of int list
      (** allow [connect] only to these IPs; when present it overrides
          the [net] category for [connect] (so ["net,connect(ip)"] means
          all socket calls but connections only to [ip]) *)

type sys_filter = Sys_none | Sys_all | Sys_atoms of filter_atom list

type t = { modifiers : (string * Types.access) list; filter : sys_filter }

val default : t
(** No modifiers, [Sys_none]: natural dependencies only, all system calls
    denied (paper §3.1). *)

val parse : string -> (t, string) result
(** Rejects malformed syntax, duplicate package modifiers, and unknown
    categories. *)

val to_string : t -> string
(** Canonical literal; [parse (to_string p)] re-reads to an equal policy. *)

val validate_packages :
  t -> known:(string -> bool) -> (unit, string) result
(** Compile-time satisfiability: every package named by a modifier must
    exist in the program. *)

val filter_leq : sys_filter -> sys_filter -> bool
(** [filter_leq f g]: [f] permits no call that [g] forbids (used by the
    nesting rule: only equal-or-more-restrictive transitions). *)

val filter_allows_cat : sys_filter -> Encl_kernel.Sysno.category -> bool
val filter_allows_connect : sys_filter -> ip:int -> bool

val pp : Format.formatter -> t -> unit
