(** Core LitterBox value types: access rights and their page-level
    meaning. *)

(** Access rights a memory view can grant on a package (paper §2.2):
    - [U] unmaps the package entirely;
    - [R] grants read-only access to data and constants;
    - [RW] grants read access to constants and read-write to variables;
    - [RWX] adds the ability to invoke the package's functions. *)
type access = U | R | RW | RWX

val access_name : access -> string
val access_of_string : string -> access option

val access_leq : access -> access -> bool
(** [access_leq a b]: [a] grants no more than [b] ([U <= R <= RW <= RWX]). *)

val access_meet : access -> access -> access

val page_perms : access -> Encl_elf.Section.kind -> Pte.perms
(** What the right means for a page of the given section kind. Text pages
    are executable only under [RWX]; rodata is never writable; data and
    arena pages are writable from [RW] up. *)

val key_rights : access -> Mpk.key_rights
(** The MPK encoding of a right (data accesses only; [RWX] and [RW] both
    map to [Read_write] — execute restrictions are enforced by the
    call-gate scan, not by PKRU). *)

val pp_access : Format.formatter -> access -> unit
