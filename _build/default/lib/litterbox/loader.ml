module Section = Encl_elf.Section
module Image = Encl_elf.Image
module Objfile = Encl_elf.Objfile

let check_overlaps sections =
  let rec check = function
    | [] | [ _ ] -> Ok ()
    | a :: (b :: _ as rest) ->
        if Section.overlaps a b then
          Error
            (Printf.sprintf "sections %s and %s overlap" a.Section.name
               b.Section.name)
        else check rest
  in
  check
    (List.sort (fun (a : Section.t) b -> compare a.Section.addr b.Section.addr) sections)

let load machine (image : Image.t) =
  match check_overlaps image.Image.sections with
  | Error e -> Error e
  | Ok () ->
      List.iter
        (fun (s : Section.t) ->
          Encl_kernel.Mm.map_at machine.Machine.mm ~addr:s.Section.addr
            ~len:(Section.pages s * Phys.page_size)
            ~perms:(Section.default_perms s.Section.kind))
        image.Image.sections;
      (* Initialised data: written straight to the physical frames (the
         loader runs before the program, so PTE permissions — e.g. rodata
         being read-only — do not apply to it). *)
      let pt = machine.Machine.trusted_pt in
      let phys = machine.Machine.phys in
      let write_raw addr data =
        let len = Bytes.length data in
        let rec copy addr off remaining =
          if remaining > 0 then begin
            let page_off = addr mod Phys.page_size in
            let chunk = min remaining (Phys.page_size - page_off) in
            match Pagetable.walk pt ~vpn:(addr / Phys.page_size) with
            | None -> invalid_arg "Loader: symbol outside mapped sections"
            | Some pte ->
                Phys.blit_of_bytes phys ~ppn:pte.Pte.ppn ~off:page_off data off chunk;
                copy (addr + chunk) (off + chunk) (remaining - chunk)
          end
        in
        copy addr 0 len
      in
      List.iter
        (fun (s : Image.placed_sym) ->
          match s.Image.ps_init with
          | Some data -> write_raw s.Image.ps_addr data
          | None -> ())
        image.Image.symbols;
      Ok ()
