lib/sim/pte.ml: Format
