lib/sim/pagetable.mli: Format Pte
