lib/sim/costs.ml: Format
