lib/sim/pte.mli: Format
