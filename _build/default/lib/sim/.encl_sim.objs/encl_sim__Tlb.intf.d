lib/sim/tlb.mli:
