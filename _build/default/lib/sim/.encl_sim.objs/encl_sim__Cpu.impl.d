lib/sim/cpu.ml: Bytes Clock Costs Format Int64 Mpk Option Pagetable Phys Printf Pte Tlb
