lib/sim/phys.ml: Array Bytes Char Printf
