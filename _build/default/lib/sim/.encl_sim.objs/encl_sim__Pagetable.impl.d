lib/sim/pagetable.ml: Format Hashtbl List Printf Pte
