lib/sim/tlb.ml: Hashtbl Queue
