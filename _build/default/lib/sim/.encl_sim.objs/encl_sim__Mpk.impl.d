lib/sim/mpk.ml: Array Encl_util Format Int32
