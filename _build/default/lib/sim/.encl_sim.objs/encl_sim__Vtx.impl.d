lib/sim/vtx.ml: Clock Costs Fun Pagetable
