lib/sim/vtx.mli: Clock Costs Pagetable
