lib/sim/mpk.mli: Format
