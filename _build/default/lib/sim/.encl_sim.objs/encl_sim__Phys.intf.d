lib/sim/phys.mli: Bytes
