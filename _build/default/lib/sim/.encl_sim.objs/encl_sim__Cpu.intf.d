lib/sim/cpu.mli: Bytes Clock Costs Format Mpk Pagetable Phys Tlb
