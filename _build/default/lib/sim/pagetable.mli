(** A per-address-space page table: virtual page number -> {!Pte.t}.

    The simulation keeps one page table per LB_VTX execution environment
    and a single shared page table for LB_MPK (whose environments differ
    only in the PKRU register value). *)

type t

val create : name:string -> t
val name : t -> string

val map : t -> vpn:int -> Pte.t -> unit
(** Install an entry. Raises [Invalid_argument] if [vpn] is mapped. *)

val unmap : t -> vpn:int -> unit
(** Remove an entry entirely. Raises [Invalid_argument] if absent. *)

val walk : t -> vpn:int -> Pte.t option
(** Lookup; [None] when the vpn has no entry. A non-present entry is
    still returned (callers must check {!Pte.t.present}). *)

val protect : t -> vpn:int -> Pte.perms -> unit
(** Change access rights of a mapped page. *)

val set_present : t -> vpn:int -> bool -> unit
(** Toggle the present bit (the LB_VTX transfer fast path). *)

val set_pkey : t -> vpn:int -> int -> unit
(** Retag a page with an MPK key (0..15). *)

val mapped_count : t -> int
val iter : t -> (int -> Pte.t -> unit) -> unit

val clone : t -> name:string -> t
(** Deep copy (fresh [Pte.t] records, shared frames): used by LB_VTX to
    derive per-enclosure page tables from the trusted one. *)

val pp : Format.formatter -> t -> unit
