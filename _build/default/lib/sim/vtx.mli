(** Intel VT-x / KVM model used by the LB_VTX backend.

    The application runs inside a single virtual machine in non-root user
    mode. Execution-environment switches are specialized system calls into
    the guest operating system (which LitterBox's [super] package
    implements): the handler validates the call site and moves CR3 to the
    target page table. Host system calls leave the VM through a hypercall
    (VM EXIT), execute in root mode, and come back with VM RESUME.

    Costs: a guest syscall is [costs.vtx_guest_syscall]; a hypercall
    round-trip is [costs.vmexit_roundtrip] on top of the host syscall
    itself; VM creation is the one-time [costs.kvm_setup]. *)

type mode = Root | Non_root

type t

val create : clock:Clock.t -> costs:Costs.t -> trusted_pt:Pagetable.t -> t
(** Creates the VM (consumes [kvm_setup], accounted to [Init]). *)

val mode : t -> mode
val cr3 : t -> Pagetable.t

val enter_vm : t -> unit
(** Enter non-root mode with the trusted page table as CR3. *)

val guest_syscall : t -> validate:(unit -> bool) -> target:Pagetable.t ->
  (unit, string) result
(** A switch: consumes one guest-syscall cost; if [validate ()] fails the
    transition is refused (the caller turns that into a fault). On success
    CR3 now points at [target]. *)

val guest_sysret : t -> validate:(unit -> bool) -> target:Pagetable.t ->
  (unit, string) result
(** The return path of a switch (epilog): same validation, slightly
    cheaper return-style transition. *)

val hypercall : t -> (unit -> 'a) -> 'a
(** Leave the VM (VM EXIT), run [f] in root mode, VM RESUME. Consumes the
    VM-exit round-trip cost and counts one exit. *)

val vmexits : t -> int
val guest_syscalls : t -> int
