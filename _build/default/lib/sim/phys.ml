let page_size = 4096

type t = {
  mutable frames : Bytes.t option array;
  mutable next : int;
  mutable free : int list;
  mutable live : int;
}

let create () = { frames = Array.make 64 None; next = 0; free = []; live = 0 }

let grow t =
  let frames = Array.make (2 * Array.length t.frames) None in
  Array.blit t.frames 0 frames 0 (Array.length t.frames);
  t.frames <- frames

let alloc_page t =
  t.live <- t.live + 1;
  match t.free with
  | ppn :: rest ->
      t.free <- rest;
      t.frames.(ppn) <- Some (Bytes.make page_size '\000');
      ppn
  | [] ->
      if t.next >= Array.length t.frames then grow t;
      let ppn = t.next in
      t.next <- ppn + 1;
      t.frames.(ppn) <- Some (Bytes.make page_size '\000');
      ppn

let frame t ppn =
  if ppn < 0 || ppn >= t.next then
    invalid_arg (Printf.sprintf "Phys: bad ppn %d" ppn);
  match t.frames.(ppn) with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Phys: ppn %d is free" ppn)

let free_page t ppn =
  ignore (frame t ppn);
  t.frames.(ppn) <- None;
  t.free <- ppn :: t.free;
  t.live <- t.live - 1

let page_count t = t.live
let read8 t ~ppn ~off = Char.code (Bytes.get (frame t ppn) off)
let write8 t ~ppn ~off v = Bytes.set (frame t ppn) off (Char.chr (v land 0xff))
let read64 t ~ppn ~off = Bytes.get_int64_le (frame t ppn) off
let write64 t ~ppn ~off v = Bytes.set_int64_le (frame t ppn) off v

let blit_to_bytes t ~ppn ~off dst dst_off len =
  Bytes.blit (frame t ppn) off dst dst_off len

let blit_of_bytes t ~ppn ~off src src_off len =
  Bytes.blit src src_off (frame t ppn) off len
