type mode = Root | Non_root

type t = {
  clock : Clock.t;
  costs : Costs.t;
  trusted_pt : Pagetable.t;
  mutable mode : mode;
  mutable cr3 : Pagetable.t;
  mutable vmexits : int;
  mutable guest_syscalls : int;
}

let create ~clock ~costs ~trusted_pt =
  Clock.consume clock Clock.Init costs.Costs.kvm_setup;
  {
    clock;
    costs;
    trusted_pt;
    mode = Root;
    cr3 = trusted_pt;
    vmexits = 0;
    guest_syscalls = 0;
  }

let mode t = t.mode
let cr3 t = t.cr3

let enter_vm t =
  t.mode <- Non_root;
  t.cr3 <- t.trusted_pt

let guest_syscall t ~validate ~target =
  t.guest_syscalls <- t.guest_syscalls + 1;
  Clock.consume t.clock Clock.Switch t.costs.Costs.vtx_guest_syscall;
  if validate () then begin
    t.cr3 <- target;
    Ok ()
  end
  else Error "guest OS refused the transition (call-site verification failed)"

let guest_sysret t ~validate ~target =
  t.guest_syscalls <- t.guest_syscalls + 1;
  Clock.consume t.clock Clock.Switch t.costs.Costs.vtx_guest_sysret;
  if validate () then begin
    t.cr3 <- target;
    Ok ()
  end
  else Error "guest OS refused the transition (call-site verification failed)"

let hypercall t f =
  t.vmexits <- t.vmexits + 1;
  Clock.consume t.clock Clock.Syscall t.costs.Costs.vmexit_roundtrip;
  let saved = t.mode in
  t.mode <- Root;
  Fun.protect ~finally:(fun () -> t.mode <- saved) f

let vmexits t = t.vmexits
let guest_syscalls t = t.guest_syscalls
