let nr_keys = 16

type pkru = int32

let pkru_all_access = 0l

let pkru_deny_all =
  (* AD bit set for every key, WD clear (irrelevant once AD is set). *)
  let rec build k acc =
    if k >= nr_keys then acc
    else build (k + 1) (Int32.logor acc (Int32.shift_left 1l (2 * k)))
  in
  build 0 0l

type key_rights = No_access | Read_only | Read_write

let check_key key =
  if key < 0 || key >= nr_keys then invalid_arg "Mpk: key out of range"

let set_key pkru ~key rights =
  check_key key;
  let ad, wd =
    match rights with
    | No_access -> (1, 0)
    | Read_only -> (0, 1)
    | Read_write -> (0, 0)
  in
  let v = Encl_util.Bitops.set_bits pkru ~lo:(2 * key) ~width:1 ad in
  Encl_util.Bitops.set_bits v ~lo:((2 * key) + 1) ~width:1 wd

let key_rights pkru ~key =
  check_key key;
  let ad = Encl_util.Bitops.get_bits pkru ~lo:(2 * key) ~width:1 in
  let wd = Encl_util.Bitops.get_bits pkru ~lo:((2 * key) + 1) ~width:1 in
  if ad = 1 then No_access else if wd = 1 then Read_only else Read_write

let allows pkru ~key ~write =
  match key_rights pkru ~key with
  | No_access -> false
  | Read_only -> not write
  | Read_write -> true

let pp_pkru ppf pkru =
  Format.fprintf ppf "PKRU=%#lx [" pkru;
  for key = 0 to nr_keys - 1 do
    let c =
      match key_rights pkru ~key with
      | No_access -> '-'
      | Read_only -> 'r'
      | Read_write -> 'w'
    in
    Format.pp_print_char ppf c
  done;
  Format.pp_print_char ppf ']'

type allocator = { mutable in_use : bool array }

let allocator () =
  let in_use = Array.make nr_keys false in
  in_use.(0) <- true;
  { in_use }

let pkey_alloc a =
  let rec find k =
    if k >= nr_keys then Error "pkey_alloc: no keys left"
    else if not a.in_use.(k) then (
      a.in_use.(k) <- true;
      Ok k)
    else find (k + 1)
  in
  find 1

let pkey_free a key =
  if key <= 0 || key >= nr_keys then Error "pkey_free: bad key"
  else if not a.in_use.(key) then Error "pkey_free: key not allocated"
  else (
    a.in_use.(key) <- false;
    Ok ())

let allocated a =
  let rec collect k acc =
    if k < 0 then acc else collect (k - 1) (if a.in_use.(k) then k :: acc else acc)
  in
  collect (nr_keys - 1) []
