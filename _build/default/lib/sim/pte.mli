(** Page-table entries for the simulated MMU. *)

type perms = { r : bool; w : bool; x : bool }

val no_perms : perms
val pp_perms : Format.formatter -> perms -> unit

val perms_subset : perms -> perms -> bool
(** [perms_subset a b] is [true] when [a] grants nothing that [b] does
    not grant. *)

type t = {
  ppn : int;  (** backing physical frame *)
  mutable present : bool;  (** cleared to unmap without forgetting [ppn] *)
  mutable perms : perms;
  mutable pkey : int;  (** MPK protection key, 0..15 *)
}

val make : ppn:int -> perms:perms -> t
(** Present entry with protection key 0. *)

val pp : Format.formatter -> t -> unit
