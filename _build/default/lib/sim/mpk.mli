(** Intel MPK model: 16 protection keys and the PKRU register.

    PKRU encodes, per key [k], two bits: AD (access disable, bit [2k]) and
    WD (write disable, bit [2k+1]). Data accesses to a page tagged with key
    [k] are refused if AD is set, and writes are additionally refused if WD
    is set. Key 0 is conventionally the default key.

    The real ISA leaves instruction fetches unchecked; LB_MPK compensates
    with binary scanning and call-gate verification (as in ERIM). The
    simulation models that software check as part of the execution
    environment, not of this module. *)

val nr_keys : int
(** 16. *)

type pkru = int32
(** Register value; 2 bits per key. *)

val pkru_all_access : pkru
(** Every key readable and writable (all bits clear). *)

val pkru_deny_all : pkru
(** Every key access-disabled. *)

type key_rights = No_access | Read_only | Read_write

val set_key : pkru -> key:int -> key_rights -> pkru
val key_rights : pkru -> key:int -> key_rights

val allows : pkru -> key:int -> write:bool -> bool
(** [allows pkru ~key ~write] is the hardware data-access check. *)

val pp_pkru : Format.formatter -> pkru -> unit

(** {2 Key allocation (kernel side)} *)

type allocator

val allocator : unit -> allocator
(** Fresh allocator; key 0 is pre-allocated as the default key. *)

val pkey_alloc : allocator -> (int, string) result
(** Allocate an unused key, or [Error] when all 16 are in use. *)

val pkey_free : allocator -> int -> (unit, string) result
val allocated : allocator -> int list
