type perms = { r : bool; w : bool; x : bool }

let no_perms = { r = false; w = false; x = false }

let pp_perms ppf p =
  Format.fprintf ppf "%c%c%c"
    (if p.r then 'r' else '-')
    (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

let perms_subset a b =
  (not a.r || b.r) && (not a.w || b.w) && (not a.x || b.x)

type t = { ppn : int; mutable present : bool; mutable perms : perms; mutable pkey : int }

let make ~ppn ~perms = { ppn; present = true; perms; pkey = 0 }

let pp ppf t =
  Format.fprintf ppf "{ppn=%d %s %a key=%d}" t.ppn
    (if t.present then "P" else "-")
    pp_perms t.perms t.pkey
