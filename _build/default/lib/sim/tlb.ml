type t = {
  capacity : int;
  entries : (string * int, unit) Hashtbl.t;
  fifo : (string * int) Queue.t;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  {
    capacity;
    entries = Hashtbl.create 2048;
    fifo = Queue.create ();
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let access t ~space ~vpn =
  let key = (space, vpn) in
  if Hashtbl.mem t.entries key then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    if Hashtbl.length t.entries >= t.capacity then begin
      let victim = Queue.pop t.fifo in
      Hashtbl.remove t.entries victim
    end;
    Hashtbl.replace t.entries key ();
    Queue.push key t.fifo;
    false
  end

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.fifo;
  t.flushes <- t.flushes + 1

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0

let occupancy t = Hashtbl.length t.entries
