type t = { name : string; entries : (int, Pte.t) Hashtbl.t }

let create ~name = { name; entries = Hashtbl.create 1024 }
let name t = t.name

let map t ~vpn pte =
  if Hashtbl.mem t.entries vpn then
    invalid_arg (Printf.sprintf "Pagetable(%s): vpn %d already mapped" t.name vpn);
  Hashtbl.replace t.entries vpn pte

let unmap t ~vpn =
  if not (Hashtbl.mem t.entries vpn) then
    invalid_arg (Printf.sprintf "Pagetable(%s): vpn %d not mapped" t.name vpn);
  Hashtbl.remove t.entries vpn

let walk t ~vpn = Hashtbl.find_opt t.entries vpn

let get t vpn =
  match walk t ~vpn with
  | Some pte -> pte
  | None ->
      invalid_arg (Printf.sprintf "Pagetable(%s): vpn %d not mapped" t.name vpn)

let protect t ~vpn perms = (get t vpn).Pte.perms <- perms
let set_present t ~vpn present = (get t vpn).Pte.present <- present

let set_pkey t ~vpn pkey =
  if pkey < 0 || pkey > 15 then invalid_arg "Pagetable.set_pkey: key out of range";
  (get t vpn).Pte.pkey <- pkey

let mapped_count t = Hashtbl.length t.entries
let iter t f = Hashtbl.iter f t.entries

let clone t ~name =
  let fresh = create ~name in
  Hashtbl.iter
    (fun vpn (pte : Pte.t) ->
      Hashtbl.replace fresh.entries vpn
        { Pte.ppn = pte.ppn; present = pte.present; perms = pte.perms; pkey = pte.pkey })
    t.entries;
  fresh

let pp ppf t =
  let entries =
    Hashtbl.fold (fun vpn pte acc -> (vpn, pte) :: acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Format.fprintf ppf "@[<v>pagetable %s (%d entries)" t.name (List.length entries);
  List.iter (fun (vpn, pte) -> Format.fprintf ppf "@ %#x -> %a" vpn Pte.pp pte) entries;
  Format.fprintf ppf "@]"
