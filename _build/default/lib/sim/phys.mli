(** Simulated physical memory: a growable store of 4 KiB page frames.

    Frames are identified by physical page numbers (PPNs). The store backs
    every virtual address space in the simulation; page tables map virtual
    page numbers to PPNs allocated here. *)

val page_size : int
(** 4096 bytes. *)

type t

val create : unit -> t

val alloc_page : t -> int
(** Allocate a zeroed frame; returns its PPN. *)

val free_page : t -> int -> unit
(** Return a frame to the free list. Double frees raise
    [Invalid_argument]. *)

val page_count : t -> int
(** Number of frames currently allocated (live, not freed). *)

val read8 : t -> ppn:int -> off:int -> int
val write8 : t -> ppn:int -> off:int -> int -> unit

val read64 : t -> ppn:int -> off:int -> int64
(** Little-endian; [off] must leave 8 bytes within the frame. *)

val write64 : t -> ppn:int -> off:int -> int64 -> unit

val blit_to_bytes : t -> ppn:int -> off:int -> Bytes.t -> int -> int -> unit
(** [blit_to_bytes t ~ppn ~off dst dst_off len] copies out of one frame;
    the range must not cross the frame boundary. *)

val blit_of_bytes : t -> ppn:int -> off:int -> Bytes.t -> int -> int -> unit
(** Copy bytes into one frame; same boundary rule. *)
