(** A translation-lookaside-buffer model (statistics only).

    The TLB caches virtual-page translations per address space. LB_MPK
    switches keep the same page table, so the TLB stays warm across
    enclosure switches; LB_VTX moves CR3, which (without PCID) flushes
    it — one of the structural reasons MPK switching is cheap. The model
    tracks hits, misses, and flushes; it charges no simulated time (TLB
    effects are already folded into the calibrated switch costs), but the
    counters let benchmarks report locality. *)

type t

val create : ?capacity:int -> unit -> t
(** FIFO-evicting set of translations; default capacity 1024. *)

val access : t -> space:string -> vpn:int -> bool
(** Record an access; [true] on hit. [space] names the address space
    (page-table identity). *)

val flush : t -> unit
(** Drop every cached translation (a CR3 move without PCID). *)

val hits : t -> int
val misses : t -> int
val flushes : t -> int
val reset_stats : t -> unit
val occupancy : t -> int
