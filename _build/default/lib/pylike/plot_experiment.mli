(** The §6.4 Python experiment: a single enclosure encapsulating a
    matplotlib-like module; secret data shared read-only; the closure
    generates a plot from the data and writes the result to disk. *)

type result = {
  total_ns : int;  (** simulated wall time of the whole run *)
  compute_ns : int;
  switch_ns : int;  (** controlled-switch time (refcounting / GC) *)
  init_ns : int;  (** delayed initialization (imports, views, KVM) *)
  syscall_ns : int;
  switches : int;  (** trusted-environment switches performed *)
  plotted : int;  (** points consumed (sanity) *)
  plot_on_disk : bool;
}

val run :
  ?backend:Encl_litterbox.Litterbox.backend ->
  mode:Pyrt.refcount_mode ->
  points:int ->
  unit ->
  result
(** [backend = None] is unmodified CPython (the baseline). The paper runs
    with LB_VTX, [points] around 250_000 (≈1M switches in conservative
    mode: incref + decref per point, two switches each). *)

val pp : Format.formatter -> result -> unit
