module Lb = Encl_litterbox.Litterbox
module Machine = Encl_litterbox.Machine
module K = Encl_kernel.Kernel

type result = {
  total_ns : int;
  compute_ns : int;
  switch_ns : int;
  init_ns : int;
  syscall_ns : int;
  switches : int;
  plotted : int;
  plot_on_disk : bool;
}

(* Per-point plotting compute (coordinate transform, path append), ns. *)
let per_point_ns = 75
let render_ns = 1_200_000

let ok = function
  | Ok v -> v
  | Error e -> failwith ("plot_experiment: " ^ e)

let matplotlib_deps = [ "numpy"; "cycler"; "dateutil"; "kiwisolver"; "pyparsing"; "pillow" ]

let run ?backend ~mode ~points () =
  let rt = ok (Pyrt.boot ?backend ~mode ()) in
  let machine = Pyrt.machine rt in
  let clock = machine.Machine.clock in
  (* The secret module holds the user's data points. *)
  let secret_arena = (points * 32) + (1 lsl 16) in
  ok (Pyrt.import_module rt ~name:"secret" ~arena_bytes:secret_arena ());
  let data =
    Array.init points (fun i ->
        let obj = Pyrt.alloc_obj rt ~modul:"secret" ~len:8 in
        Pyrt.write_payload rt obj (Bytes.make 8 (Char.chr (i land 0xff)));
        obj)
  in
  (* Lazy imports of matplotlib and its dependency tree: repeated partial
     Init calls into LitterBox. *)
  List.iter (fun name -> ok (Pyrt.import_module rt ~name ())) matplotlib_deps;
  ok (Pyrt.import_module rt ~name:"matplotlib" ~imports:matplotlib_deps
        ~arena_bytes:(4 * 1024 * 1024) ());
  let plotted = ref 0 in
  let body () =
    (* Inside the enclosure: walk the read-only secret data. CPython
       touches each object's reference count as it borrows it. *)
    let acc = ref 0 in
    for i = 0 to points - 1 do
      let obj = data.(i) in
      Pyrt.incref rt obj;
      let payload = Pyrt.read_payload rt obj in
      acc := !acc + Char.code (Bytes.get payload 0);
      Clock.consume clock Clock.Compute per_point_ns;
      Pyrt.decref rt obj;
      incr plotted
    done;
    (* Render the figure into matplotlib's arena. *)
    let figure = Pyrt.alloc_obj rt ~modul:"matplotlib" ~len:65536 in
    Pyrt.write_payload rt figure (Bytes.make 65536 'P');
    Clock.consume clock Clock.Compute render_ns;
    (* Write the plot to disk. *)
    let do_syscall call =
      match Pyrt.lb rt with
      | Some lb -> Lb.syscall lb call
      | None -> K.syscall machine.Machine.kernel call
    in
    let fd =
      match do_syscall (K.Open { path = "/plot.png"; flags = [ K.O_wronly; K.O_creat ] }) with
      | Ok fd -> fd
      | Error e -> failwith ("open: " ^ K.errno_name e)
    in
    ignore (do_syscall (K.Write { fd; buf = figure.Pyrt.o_addr + Pyrt.header_bytes; len = 65536 }));
    ignore (do_syscall (K.Close fd));
    !acc
  in
  let result =
    match backend with
    | None ->
        ignore (body ());
        Ok ()
    | Some _ -> (
        match
          Pyrt.with_enclosure rt ~name:"plot_enc" ~owner:"__main__"
            ~deps:[ "matplotlib" ] ~policy:"secret:R; sys=io,file" body
        with
        | Ok _ -> Ok ()
        | Error e -> Error e)
  in
  (match result with Ok () -> () | Error e -> failwith ("plot faulted: " ^ e));
  (* The measured time is the whole program run, from interpreter start:
     the delayed initialization (imports, view computation, KVM) is part
     of the enclosure configuration's cost, as in the paper. *)
  let total = Clock.now clock in
  {
    total_ns = total;
    compute_ns = Clock.spent clock Clock.Compute;
    switch_ns = Clock.spent clock Clock.Switch;
    init_ns = Clock.spent clock Clock.Init;
    syscall_ns = Clock.spent clock Clock.Syscall;
    switches = Pyrt.trusted_switches rt;
    plotted = !plotted;
    plot_on_disk = Encl_kernel.Vfs.exists machine.Machine.vfs "/plot.png";
  }

let pp ppf r =
  Format.fprintf ppf
    "total=%.2fms compute=%.2fms switch=%.2fms init=%.2fms syscall=%.3fms \
     switches=%d points=%d plot=%b"
    (float_of_int r.total_ns /. 1e6)
    (float_of_int r.compute_ns /. 1e6)
    (float_of_int r.switch_ns /. 1e6)
    (float_of_int r.init_ns /. 1e6)
    (float_of_int r.syscall_ns /. 1e6)
    r.switches r.plotted r.plot_on_disk
