lib/pylike/pyrt.ml: Bytes Clock Costs Cpu Encl_elf Encl_kernel Encl_litterbox Fun Hashtbl Int64 List Option Printf Pte
