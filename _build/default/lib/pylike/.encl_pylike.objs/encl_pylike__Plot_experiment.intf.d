lib/pylike/plot_experiment.mli: Encl_litterbox Format Pyrt
