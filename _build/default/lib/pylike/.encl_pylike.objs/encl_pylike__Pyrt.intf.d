lib/pylike/pyrt.mli: Bytes Encl_litterbox
