lib/pylike/plot_experiment.ml: Array Bytes Char Clock Encl_kernel Encl_litterbox Format List Pyrt
